#include "core/protocol.hpp"

#include <cctype>
#include <limits>

namespace ep::core {
namespace {

/// Strict token scanner: the protocol is machine-to-machine, so parsing
/// is exact — single spaces between tokens, no leading/trailing slack,
/// numbers are plain non-negative decimal with no sign or prefix.
class Scanner {
 public:
  explicit Scanner(const std::string& line) : s_(line) {}

  bool literal(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') ++n;
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool space() {
    if (pos_ >= s_.size() || s_[pos_] != ' ') return false;
    ++pos_;
    return true;
  }

  bool number(long long* out) {
    std::size_t start = pos_;
    unsigned long long v = 0;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(
                                   s_[pos_]))) {
      unsigned long long digit =
          static_cast<unsigned long long>(s_[pos_] - '0');
      if (v > (~0ULL - digit) / 10) return false;  // overflow
      v = v * 10 + digit;
      ++pos_;
    }
    if (pos_ == start) return false;
    if (v > static_cast<unsigned long long>(
                std::numeric_limits<long long>::max()))
      return false;
    *out = static_cast<long long>(v);
    return true;
  }

  bool size(std::size_t* out) {
    long long v = 0;
    if (!number(&v)) return false;
    *out = static_cast<std::size_t>(v);
    return true;
  }

  /// The rest of the line, which must be non-empty and spaceless — a
  /// lease target is one token.
  bool token_to_end(std::string* out) {
    if (pos_ >= s_.size()) return false;
    std::string rest = s_.substr(pos_);
    if (rest.find(' ') != std::string::npos) return false;
    pos_ = s_.size();
    *out = rest;
    return true;
  }

  bool at_end() const { return pos_ == s_.size(); }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse_protocol_line(const std::string& line, ProtocolMsg* out) {
  ProtocolMsg msg;
  Scanner sc(line);
  if (sc.literal("HELLO")) {
    msg.type = ProtocolMsg::Type::hello;
    if (!sc.space() || !sc.number(&msg.version) || !sc.at_end())
      return false;
  } else if (sc.literal("PING")) {
    msg.type = ProtocolMsg::Type::ping;
    if (!sc.at_end()) return false;
  } else if (sc.literal("YIELD")) {
    msg.type = ProtocolMsg::Type::yield;
    if (!sc.space() || !sc.size(&msg.begin) || !sc.space() ||
        !sc.size(&msg.end) || !sc.at_end())
      return false;
  } else if (sc.literal("DONE")) {
    msg.type = ProtocolMsg::Type::done;
    if (!sc.space() || !sc.size(&msg.begin) || !sc.space() ||
        !sc.size(&msg.end))
      return false;
    if (!sc.at_end()) {
      msg.has_handoff = true;
      if (!sc.space() || !sc.size(&msg.offset) || !sc.space() ||
          !sc.size(&msg.length) || !sc.at_end())
        return false;
    }
  } else if (sc.literal("BYE")) {
    msg.type = ProtocolMsg::Type::bye;
    long long status = 0;
    if (!sc.space() || !sc.number(&status) || !sc.at_end()) return false;
    if (status > 255) return false;  // wait()-style exit statuses only
    msg.status = static_cast<int>(status);
  } else if (sc.literal("LEASE")) {
    msg.type = ProtocolMsg::Type::lease;
    if (!sc.space() || !sc.size(&msg.begin) || !sc.space() ||
        !sc.size(&msg.end) || !sc.space() || !sc.token_to_end(&msg.target))
      return false;
  } else if (sc.literal("FEEDBACK")) {
    msg.type = ProtocolMsg::Type::feedback;
    if (!sc.space() || !sc.size(&msg.begin) || !sc.space() ||
        !sc.size(&msg.end) || !sc.space() || !sc.token_to_end(&msg.target))
      return false;
  } else if (sc.literal("STEAL")) {
    msg.type = ProtocolMsg::Type::steal;
    if (!sc.at_end()) return false;
  } else if (sc.literal("EXIT")) {
    msg.type = ProtocolMsg::Type::exit_cmd;
    if (!sc.at_end()) return false;
  } else {
    return false;
  }
  *out = msg;
  return true;
}

std::string format_hello(long long version) {
  return "HELLO " + std::to_string(version);
}

std::string format_ping() { return "PING"; }

std::string format_yield(std::size_t mid, std::size_t end) {
  return "YIELD " + std::to_string(mid) + " " + std::to_string(end);
}

std::string format_done(std::size_t begin, std::size_t end) {
  return "DONE " + std::to_string(begin) + " " + std::to_string(end);
}

std::string format_done(std::size_t begin, std::size_t end,
                        std::size_t offset, std::size_t length) {
  return format_done(begin, end) + " " + std::to_string(offset) + " " +
         std::to_string(length);
}

std::string format_bye(int status) {
  return "BYE " + std::to_string(status);
}

std::string format_lease(std::size_t begin, std::size_t end,
                         const std::string& target) {
  return "LEASE " + std::to_string(begin) + " " + std::to_string(end) +
         " " + target;
}

std::string format_feedback(std::size_t begin, std::size_t end,
                            const std::string& spec) {
  return "FEEDBACK " + std::to_string(begin) + " " + std::to_string(end) +
         " " + spec;
}

std::string format_steal() { return "STEAL"; }

std::string format_exit() { return "EXIT"; }

std::string format_protocol_msg(const ProtocolMsg& msg) {
  switch (msg.type) {
    case ProtocolMsg::Type::hello:
      return format_hello(msg.version);
    case ProtocolMsg::Type::ping:
      return format_ping();
    case ProtocolMsg::Type::yield:
      return format_yield(msg.begin, msg.end);
    case ProtocolMsg::Type::done:
      return msg.has_handoff
                 ? format_done(msg.begin, msg.end, msg.offset, msg.length)
                 : format_done(msg.begin, msg.end);
    case ProtocolMsg::Type::bye:
      return format_bye(msg.status);
    case ProtocolMsg::Type::lease:
      return format_lease(msg.begin, msg.end, msg.target);
    case ProtocolMsg::Type::feedback:
      return format_feedback(msg.begin, msg.end, msg.target);
    case ProtocolMsg::Type::steal:
      return format_steal();
    case ProtocolMsg::Type::exit_cmd:
      return format_exit();
  }
  return {};
}

}  // namespace ep::core
