// Procedure steps 4-8 as a parallel engine.
//
// The Executor drains an InjectionPlan across a pool of worker threads.
// Each work item is one full rebuild-and-rerun cycle, and each cycle runs
// in its own fresh TargetWorld — built by the scenario's `build` callback,
// or cloned copy-on-write from the plan's frozen prototype when the
// scenario is snapshot-safe (see core/snapshot.hpp) — the
// thread-confinement rule: kernel, VFS, network, and registry state are
// owned by exactly one run and never shared mutably. The only state
// workers share is immutable (the plan, the scenario definition, the
// fault catalog, the frozen prototype), so outcome i is independent of
// scheduling and is written to result slot i — the result is
// bit-identical for any worker count, cached or not.
#pragma once

#include <cstddef>
#include <functional>

#include "core/planner.hpp"

namespace ep::core {

struct ExecutorOptions {
  /// Worker threads draining the plan. 1 = run serially on the calling
  /// thread (no threads spawned); n > 1 spawns n-1 helpers plus the
  /// calling thread.
  int jobs = 1;
  /// Clone the plan's frozen prototype world per run instead of calling
  /// scenario.build(). No effect on plans without a snapshot (scenario
  /// not snapshot-safe, or planned with caching off).
  bool use_world_cache = true;
  /// Validate redzone poison during each run and in the end-of-run sweep
  /// (see os/redzone.hpp). `epa_cli --no-redzone` is the escape hatch;
  /// with no corruption the results are byte-identical either way.
  bool use_redzone = true;
  /// Reuse one per-worker WorldArena (core/snapshot.hpp) for the cached
  /// clone path instead of heap-allocating every clone. Off is the
  /// pre-pool behavior the bench compares against; outcomes are
  /// byte-identical either way (clones are storage-location-
  /// independent).
  bool pool_worlds = true;
};

/// Section 4.1's assumption analysis for one violating outcome, judged
/// against a fresh *benign* world (who could actually effect the
/// perturbation there?).
[[nodiscard]] Exploitability analyze_exploitability(
    const Scenario& scenario, const InteractionPoint& point,
    const FaultRef& fault);

/// Same analysis against an already-built benign world (read-only): the
/// cached path judges against the frozen prototype without building or
/// even cloning.
[[nodiscard]] Exploitability analyze_exploitability(
    const TargetWorld& benign, const InteractionPoint& point,
    const FaultRef& fault);

/// Run fn(0) ... fn(count-1) across `jobs` threads via a shared work
/// queue. Call order across threads is unspecified; exceptions are
/// collected per index and the lowest-index one is rethrown after all
/// workers finish, so failure behavior is deterministic too.
void parallel_for(std::size_t count, int jobs,
                  const std::function<void(std::size_t)>& fn);

/// The CampaignResult a drained plan fills in: every plan-derived field
/// copied over and `injections` sized one slot per work item. Both
/// Executor::execute and the MultiCampaign scheduler assemble results
/// through this, so the plan-to-result mapping lives in one place.
[[nodiscard]] CampaignResult result_skeleton(const InjectionPlan& plan);

class Executor {
 public:
  /// `scenario` must outlive the executor (the campaign owns it).
  explicit Executor(const Scenario& scenario);

  /// Drain the plan and assemble the CampaignResult. Injection outcomes
  /// appear in plan-item order regardless of `jobs`.
  [[nodiscard]] CampaignResult execute(const InjectionPlan& plan,
                                       const ExecutorOptions& opts = {}) const;

  /// Drain only the given plan items (by stable id = plan index), across
  /// the same worker pool; outcome i corresponds to item_ids[i]. This is
  /// the sharded-execution drain (core/wire.hpp): a shard process runs
  /// exactly its subset and outcomes later merge back by id. Ids must be
  /// in range; duplicates are allowed but wasteful.
  [[nodiscard]] std::vector<InjectionOutcome> execute_subset(
      const InjectionPlan& plan, const std::vector<std::size_t>& item_ids,
      const ExecutorOptions& opts = {}) const;

  /// The checkpointed form of execute_subset: the subset is drained in
  /// chunks of `checkpoint_every` items (0 = one chunk), `on_checkpoint`
  /// is invoked with the completed prefix (parallel to the first
  /// completed.size() item_ids) after each chunk except the last, and
  /// `stop` is polled before each chunk — returning true ends the drain
  /// early. The returned outcomes are the completed prefix, so a
  /// preempted shard keeps everything it finished. Equal prefixes are
  /// bit-identical to an uninterrupted drain for any chunk size or job
  /// count.
  [[nodiscard]] std::vector<InjectionOutcome> execute_subset_checkpointed(
      const InjectionPlan& plan, const std::vector<std::size_t>& item_ids,
      std::size_t checkpoint_every,
      const std::function<void(const std::vector<InjectionOutcome>&)>&
          on_checkpoint,
      const std::function<bool()>& stop,
      const ExecutorOptions& opts = {}) const;

  /// One rebuild-and-rerun cycle (steps 4-8) for a single work item.
  /// Thread-safe: touches only the fresh world it builds or clones. The
  /// scheduler's shared pool calls this directly. `opts.jobs` is ignored
  /// (a single item has no inner parallelism).
  [[nodiscard]] InjectionOutcome run_item(const InjectionPlan& plan,
                                          const WorkItem& item,
                                          const ExecutorOptions& opts = {})
      const;

 private:
  const Scenario& scenario_;
};

}  // namespace ep::core
