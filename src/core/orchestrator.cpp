#include "core/orchestrator.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <utility>
#include <vector>

namespace ep::core {

namespace {

std::string describe_exit(const WorkerEvent& ev) {
  if (ev.status == -1) return "connection lost";
  return ev.status < 0
             ? "killed by signal " + std::to_string(-ev.status)
             : "exit status " + std::to_string(ev.status);
}

long long steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::vector<Lease> lease_partition(std::size_t plan_items,
                                   const OrchestratorOptions& opts) {
  if (opts.workers < 1)
    throw OrchestratorError("orchestrate: workers must be >= 1");
  const auto workers = static_cast<std::size_t>(opts.workers);
  std::size_t lease_items = opts.lease_items;
  if (lease_items == 0)
    lease_items = std::max<std::size_t>(1, plan_items / (workers * 4));
  std::vector<Lease> leases;
  for (std::size_t begin = 0; begin < plan_items; begin += lease_items)
    leases.push_back(
        {leases.size(), begin, std::min(begin + lease_items, plan_items)});
  return leases;
}

CampaignResult orchestrate(const InjectionPlan& plan, Transport& transport,
                           const OrchestratorOptions& opts,
                           OrchestratorStats* stats) {
  // The exhaustive path as one client of the WorkSource seam: a single
  // wave covering the whole fixed plan, partitioned exactly like
  // lease_partition(). known_items = the full plan, so FEEDBACK is never
  // sent and the scheduling (and merged bytes) are the pre-seam ones.
  PlanWorkSource source(plan);
  return orchestrate_source(source, transport, opts, stats,
                            plan.items.size());
}

CampaignResult orchestrate_source(WorkSource& source, Transport& transport,
                                  const OrchestratorOptions& opts,
                                  OrchestratorStats* stats,
                                  std::size_t known_items) {
  OrchestratorStats local_stats;
  OrchestratorStats& st = stats ? *stats : local_stats;
  st = {};
  if (opts.workers < 1)
    throw OrchestratorError("orchestrate: workers must be >= 1");
  const auto workers = static_cast<std::size_t>(opts.workers);

  std::function<long long()> now =
      opts.now_ms ? opts.now_ms : std::function<long long()>(steady_now_ms);

  // Checkpoint-replayed reports (search --resume): waves already drained
  // in a previous run, owed to the final merge but never re-executed.
  std::vector<ShardReport> reports;
  std::vector<std::string> labels;
  for (ShardReport& r : source.take_replayed_reports()) {
    reports.push_back(std::move(r));
    labels.emplace_back("resumed checkpoint");
  }

  std::pair<std::size_t, std::size_t> wave = source.next_wave();
  if (wave.first == wave.second && reports.empty())
    return result_skeleton(source.plan());  // nothing to lease out

  // Leases across all waves share one seq space: each wave's partition
  // takes the next positions in grant order and stolen tails take fresh
  // seqs, so a seq names the same id range for the whole campaign. The
  // split budget (kMaxLeaseSplits) is likewise campaign-global — it is
  // what transports pre-allocated for.
  std::deque<Lease> pending;
  std::size_t next_seq = 0;
  std::size_t splits_used = 0;
  std::size_t respawns_used = 0;

  struct Slot {
    bool live = false;
    bool busy = false;
    bool steal_pending = false;  // STEAL sent, YIELD (or DONE) awaited
    Lease lease;                 // valid while busy
    long long last_heard = 0;    // grant or any event; the deadman input
    std::size_t known = 0;       // plan items this worker has been shipped
  };
  std::map<std::size_t, Slot> slots;
  std::size_t live = 0;
  auto spawn_one = [&]() -> bool {
    std::optional<std::size_t> w = transport.spawn();
    if (!w) return false;
    // A fresh worker (re)reads the plan the transport serialized at
    // construction — known_items items — no matter which wave it joins.
    if (!slots.emplace(*w, Slot{true, false, false, {}, now(), known_items})
             .second)
      throw OrchestratorError("orchestrate: transport reused worker id " +
                              std::to_string(*w));
    ++st.workers_spawned;
    ++live;
    return true;
  };

  auto busy_count = [&] {
    std::size_t c = 0;
    for (auto& [w, slot] : slots)
      if (slot.live && slot.busy) ++c;
    return c;
  };

  // Refill the fleet while there is more work than live workers can
  // hold, within the respawn budget. Budget exhausted (or no worker
  // available) with none left is fatal; with some left, the fleet just
  // runs smaller. The auto budget tracks leases dealt so far, which for
  // the single-wave exhaustive path is the classic partition size.
  auto refill = [&] {
    const std::size_t remaining = pending.size() + busy_count();
    const std::size_t respawn_budget =
        opts.max_respawns ? opts.max_respawns : st.leases_total + 2 * workers;
    while (live < std::min(workers, remaining)) {
      if (respawns_used >= respawn_budget) {
        if (live == 0)
          throw OrchestratorError(
              "orchestrate: worker respawn budget (" +
              std::to_string(respawn_budget) + ") exhausted with " +
              std::to_string(remaining) +
              " lease(s) outstanding — workers are being preempted "
              "faster than they drain");
        break;
      }
      if (!spawn_one()) {
        if (live == 0)
          throw OrchestratorError(
              "orchestrate: every worker is gone and the transport has "
              "no replacement, with " + std::to_string(remaining) +
              " lease(s) outstanding");
        break;
      }
      ++respawns_used;
    }
  };

  bool fleet_spawned = false;

  // A busy worker heard from too long ago is dead to us: kill it through
  // the transport (no further events), take its lease back, and let
  // refill() replace it. Returns true when anyone expired.
  auto reap_expired = [&]() -> bool {
    if (opts.deadman_ms <= 0) return false;
    bool any = false;
    const long long t = now();
    for (auto& [w, slot] : slots) {
      if (!slot.live || !slot.busy) continue;
      if (t - slot.last_heard < opts.deadman_ms) continue;
      transport.kill(w);
      slot.live = false;
      --live;
      pending.push_front(slot.lease);
      slot.busy = false;
      slot.steal_pending = false;
      ++st.leases_released;
      ++st.workers_preempted;
      ++st.deadman_expiries;
      any = true;
    }
    return any;
  };

  // How long wait_any may block: until the earliest possible deadman
  // expiry among busy workers (so silence is noticed on time), forever
  // when the deadman is off.
  auto poll_timeout = [&]() -> long {
    if (opts.deadman_ms <= 0) return -1;
    long long earliest = -1;
    const long long t = now();
    for (auto& [w, slot] : slots) {
      if (!slot.live || !slot.busy) continue;
      long long left = slot.last_heard + opts.deadman_ms - t;
      if (left < 1) left = 1;
      if (earliest < 0 || left < earliest) earliest = left;
    }
    return static_cast<long>(earliest);
  };

  while (wave.first != wave.second) {
    // Partition this wave into leases with lease_partition()'s grain
    // rule applied to the wave size — identical ranges (and seqs) to
    // the classic partition for the single full-plan wave. pending is
    // empty here: the previous wave's barrier collected every lease.
    {
      const std::size_t wave_items = wave.second - wave.first;
      std::size_t lease_items = opts.lease_items;
      if (lease_items == 0)
        lease_items = std::max<std::size_t>(1, wave_items / (workers * 4));
      for (std::size_t b = wave.first; b < wave.second; b += lease_items) {
        pending.push_back(
            {next_seq++, b, std::min(b + lease_items, wave.second)});
        ++st.leases_total;
      }
    }

    if (!fleet_spawned) {
      // Spawn against the item count, not the lease count: a one-lease
      // wave still wants idle workers around, because work stealing can
      // split that lease across them.
      const std::size_t first_wave_items = wave.second - wave.first;
      for (std::size_t i = 0; i < std::min(workers, first_wave_items); ++i)
        if (!spawn_one()) break;
      if (live == 0)
        throw OrchestratorError(
            "orchestrate: transport produced no workers (is the fleet "
            "connected?)");
      fleet_spawned = true;
    } else {
      refill();
    }

    while (!pending.empty() || busy_count() > 0) {
      if (reap_expired()) {
        refill();
        continue;
      }

      // Keep every idle live worker fed before blocking for events.
      for (auto& [w, slot] : slots) {
        if (pending.empty()) break;
        if (!slot.live || slot.busy) continue;
        slot.busy = true;
        slot.lease = pending.front();
        pending.pop_front();
        slot.last_heard = now();
        ++st.leases_granted;
        // Ship any plan items this worker has never seen before granting a
        // lease that reaches into them. Never fires on the exhaustive path
        // (known == the whole plan).
        if (slot.known < slot.lease.end) {
          transport.feedback(w, source.plan(), slot.known,
                             source.plan().items.size());
          slot.known = source.plan().items.size();
        }
        transport.submit(w, slot.lease);
      }

      // Work stealing: nothing left to grant but idle workers exist, so
      // ask stragglers to yield the undrained tails of their leases — one
      // outstanding STEAL per busy worker, at most one per idle worker,
      // bounded by the split budget transports pre-allocated for.
      if (pending.empty()) {
        std::size_t idle = 0, outstanding = 0;
        for (auto& [w, slot] : slots) {
          if (!slot.live) continue;
          if (!slot.busy) ++idle;
          else if (slot.steal_pending) ++outstanding;
        }
        for (auto& [w, slot] : slots) {
          if (idle <= outstanding) break;
          if (splits_used + outstanding >= kMaxLeaseSplits) break;
          if (!slot.live || !slot.busy || slot.steal_pending) continue;
          if (slot.lease.end - slot.lease.begin < 2) continue;
          transport.steal(w);
          slot.steal_pending = true;
          ++outstanding;
        }
      }

      std::optional<WorkerEvent> maybe = transport.wait_any(poll_timeout());
      if (!maybe) continue;  // timed out: the top of the loop reaps
      WorkerEvent ev = std::move(*maybe);
      auto it = slots.find(ev.worker);
      if (it == slots.end() || !it->second.live)
        throw OrchestratorError("orchestrate: event from unknown worker " +
                                std::to_string(ev.worker));
      Slot& slot = it->second;
      slot.last_heard = now();

      if (ev.kind == WorkerEvent::Kind::heartbeat) continue;

      if (ev.kind == WorkerEvent::Kind::lease_yielded) {
        if (!slot.busy || !slot.steal_pending ||
            slot.lease.seq != ev.lease.seq ||
            ev.yield_mid <= slot.lease.begin ||
            ev.yield_mid >= slot.lease.end)
          throw OrchestratorError(
              "orchestrate: worker " + std::to_string(ev.worker) +
              " yielded a range it was not asked to steal from");
        // The straggler keeps [begin, mid); the tail becomes a brand-new
        // lease at the front of the queue, which the feeding pass above
        // hands to an idle worker next iteration.
        Lease stolen{next_seq++, ev.yield_mid, slot.lease.end};
        slot.lease.end = ev.yield_mid;
        slot.steal_pending = false;
        pending.push_front(stolen);
        ++splits_used;
        ++st.leases_split;
        continue;
      }

      if (ev.kind == WorkerEvent::Kind::lease_done) {
        if (!slot.busy || slot.lease.seq != ev.lease.seq ||
            slot.lease.begin != ev.lease.begin ||
            slot.lease.end != ev.lease.end)
          throw OrchestratorError(
              "orchestrate: worker " + std::to_string(ev.worker) +
              " reported a lease it was not granted");
        // Light shape check here; the merge re-validates everything. A
        // report that is not the lease it claims means a broken worker,
        // and failing now names it.
        const ShardReport& r = ev.report;
        if (!r.leased || !r.complete ||
            r.assigned_ids.size() != ev.lease.end - ev.lease.begin ||
            (!r.assigned_ids.empty() &&
             (r.assigned_ids.front() != ev.lease.begin ||
              r.assigned_ids.back() + 1 != ev.lease.end)))
          throw OrchestratorError(
              "orchestrate: worker " + std::to_string(ev.worker) +
              "'s report does not match lease [" +
              std::to_string(ev.lease.begin) + ", " +
              std::to_string(ev.lease.end) + ")" +
              (ev.label.empty() ? "" : " (" + ev.label + ")"));
        // Feedback: the source scores this wave's outcomes before it
        // generates the next wave (a no-op for the exhaustive path).
        source.absorb(ev.report);
        reports.push_back(std::move(ev.report));
        labels.push_back(std::move(ev.label));
        slot.busy = false;
        slot.steal_pending = false;
        continue;
      }

      // Worker gone. Its unfinished lease (if any) goes back to the front
      // of the queue — finish what was started before opening new ranges.
      slot.live = false;
      --live;
      slot.steal_pending = false;
      if (slot.busy) {
        pending.push_front(slot.lease);
        slot.busy = false;
        ++st.leases_released;
      }
      if (ev.kind == WorkerEvent::Kind::died)
        throw OrchestratorError("orchestrate: worker " +
                                std::to_string(ev.worker) + " failed (" +
                                describe_exit(ev) +
                                "); a deterministic failure would only "
                                "repeat, not re-leasing");
      if (ev.kind == WorkerEvent::Kind::exited)
        throw OrchestratorError(
            "orchestrate: worker " + std::to_string(ev.worker) +
            " exited cleanly with work outstanding — protocol violation");
      ++st.workers_preempted;
      refill();
    }

    // Wave barrier: every lease of this wave is collected and absorbed;
    // only now may the source decide the next wave, so generation sees
    // a deterministic (stable-id-ordered) view of all prior outcomes
    // regardless of lease scheduling.
    wave = source.next_wave();
  }

  // All leases collected: release the fleet and reap every exit. A
  // worker may exit 4 here (preempted while idle) — harmless now. With
  // the deadman on, a worker that neither exits nor heartbeats within
  // the window is killed rather than waited on forever.
  for (auto& [w, slot] : slots)
    if (slot.live) transport.shutdown(w);
  while (live > 0) {
    std::optional<WorkerEvent> maybe = transport.wait_any(
        opts.deadman_ms > 0 ? static_cast<long>(opts.deadman_ms) : -1);
    if (!maybe) {
      for (auto& [w, slot] : slots)
        if (slot.live) {
          transport.kill(w);
          slot.live = false;
          --live;
          ++st.deadman_expiries;
        }
      break;
    }
    const WorkerEvent& ev = *maybe;
    if (ev.kind == WorkerEvent::Kind::heartbeat) continue;
    if (ev.kind == WorkerEvent::Kind::lease_done ||
        ev.kind == WorkerEvent::Kind::lease_yielded)
      throw OrchestratorError(
          "orchestrate: worker " + std::to_string(ev.worker) +
          " reported a lease after every lease was collected");
    auto it = slots.find(ev.worker);
    if (it != slots.end() && it->second.live) {
      it->second.live = false;
      --live;
    }
  }

  // Reports from earlier waves (and resumed checkpoints) were written
  // against a shorter plan; the drain grew it. Their leases and
  // outcomes are unchanged — rebase the plan_items header on the final
  // size so the merge's consistency checks see one plan. A no-op for
  // the exhaustive path (every report already carries the full size).
  const std::size_t n = source.plan().items.size();
  for (ShardReport& r : reports) r.plan_items = n;
  return merge_shard_reports(source.plan(), reports, labels);
}

}  // namespace ep::core
