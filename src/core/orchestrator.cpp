#include "core/orchestrator.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>
#include <vector>

namespace ep::core {

namespace {

std::string describe_exit(const WorkerEvent& ev) {
  return ev.status < 0
             ? "killed by signal " + std::to_string(-ev.status)
             : "exit status " + std::to_string(ev.status);
}

}  // namespace

std::vector<Lease> lease_partition(std::size_t plan_items,
                                   const OrchestratorOptions& opts) {
  if (opts.workers < 1)
    throw OrchestratorError("orchestrate: workers must be >= 1");
  const auto workers = static_cast<std::size_t>(opts.workers);
  std::size_t lease_items = opts.lease_items;
  if (lease_items == 0)
    lease_items = std::max<std::size_t>(1, plan_items / (workers * 4));
  std::vector<Lease> leases;
  for (std::size_t begin = 0; begin < plan_items; begin += lease_items)
    leases.push_back(
        {leases.size(), begin, std::min(begin + lease_items, plan_items)});
  return leases;
}

CampaignResult orchestrate(const InjectionPlan& plan, Transport& transport,
                           const OrchestratorOptions& opts,
                           OrchestratorStats* stats) {
  OrchestratorStats local_stats;
  OrchestratorStats& st = stats ? *stats : local_stats;
  st = {};
  if (opts.workers < 1)
    throw OrchestratorError("orchestrate: workers must be >= 1");
  const auto workers = static_cast<std::size_t>(opts.workers);
  const std::size_t n = plan.items.size();
  if (n == 0) return result_skeleton(plan);  // nothing to lease out

  // The fixed lease partition (lease_partition — shared with transports
  // that pre-size per-lease resources): contiguous ranges, ascending.
  // Scheduling is dynamic; the partition is not, so the merged set is
  // always "every lease exactly once" regardless of who drained what.
  std::vector<Lease> partition = lease_partition(n, opts);
  std::deque<Lease> pending(partition.begin(), partition.end());
  st.leases_total = pending.size();
  const std::size_t respawn_budget =
      opts.max_respawns ? opts.max_respawns
                        : st.leases_total + 2 * workers;

  struct Slot {
    bool live = false;
    bool busy = false;
    Lease lease;  // valid while busy
  };
  std::map<std::size_t, Slot> slots;
  std::size_t live = 0;
  auto spawn_one = [&] {
    std::size_t w = transport.spawn();
    if (!slots.emplace(w, Slot{true, false, {}}).second)
      throw OrchestratorError("orchestrate: transport reused worker id " +
                              std::to_string(w));
    ++st.workers_spawned;
    ++live;
  };
  for (std::size_t i = 0; i < std::min(workers, pending.size()); ++i)
    spawn_one();

  std::vector<ShardReport> reports(st.leases_total);
  std::vector<std::string> labels(st.leases_total);
  std::size_t completed = 0;
  std::size_t respawns_used = 0;

  while (completed < st.leases_total) {
    // Keep every idle live worker fed before blocking for events.
    for (auto& [w, slot] : slots) {
      if (pending.empty()) break;
      if (!slot.live || slot.busy) continue;
      slot.busy = true;
      slot.lease = pending.front();
      pending.pop_front();
      ++st.leases_granted;
      transport.submit(w, slot.lease);
    }

    WorkerEvent ev = transport.wait_any();
    auto it = slots.find(ev.worker);
    if (it == slots.end() || !it->second.live)
      throw OrchestratorError("orchestrate: event from unknown worker " +
                              std::to_string(ev.worker));
    Slot& slot = it->second;

    if (ev.kind == WorkerEvent::Kind::lease_done) {
      if (!slot.busy || slot.lease.seq != ev.lease.seq)
        throw OrchestratorError(
            "orchestrate: worker " + std::to_string(ev.worker) +
            " reported a lease it was not granted");
      // Light shape check here; the merge re-validates everything. A
      // report that is not the lease it claims means a broken worker,
      // and failing now names it.
      const ShardReport& r = ev.report;
      if (!r.leased || !r.complete ||
          r.assigned_ids.size() != ev.lease.end - ev.lease.begin ||
          (!r.assigned_ids.empty() &&
           (r.assigned_ids.front() != ev.lease.begin ||
            r.assigned_ids.back() + 1 != ev.lease.end)))
        throw OrchestratorError(
            "orchestrate: worker " + std::to_string(ev.worker) +
            "'s report does not match lease [" +
            std::to_string(ev.lease.begin) + ", " +
            std::to_string(ev.lease.end) + ")" +
            (ev.label.empty() ? "" : " (" + ev.label + ")"));
      reports[ev.lease.seq] = std::move(ev.report);
      labels[ev.lease.seq] = ev.label;
      slot.busy = false;
      ++completed;
      continue;
    }

    // Worker gone. Its unfinished lease (if any) goes back to the front
    // of the queue — finish what was started before opening new ranges.
    slot.live = false;
    --live;
    if (slot.busy) {
      pending.push_front(slot.lease);
      slot.busy = false;
      ++st.leases_released;
    }
    if (!ev.preempted)
      throw OrchestratorError("orchestrate: worker " +
                              std::to_string(ev.worker) + " failed (" +
                              describe_exit(ev) +
                              "); a deterministic failure would only "
                              "repeat, not re-leasing");
    ++st.workers_preempted;

    // Refill the fleet while there is more work than live workers can
    // hold, within the respawn budget. Budget exhausted with no workers
    // left is fatal; with some left, the fleet just runs smaller.
    const std::size_t remaining = st.leases_total - completed;
    while (live < std::min(workers, remaining)) {
      if (respawns_used >= respawn_budget) {
        if (live == 0)
          throw OrchestratorError(
              "orchestrate: worker respawn budget (" +
              std::to_string(respawn_budget) + ") exhausted with " +
              std::to_string(remaining) +
              " lease(s) outstanding — workers are being preempted "
              "faster than they drain");
        break;
      }
      ++respawns_used;
      spawn_one();
    }
  }

  // All leases collected: release the fleet and reap every exit. A
  // worker may exit 4 here (preempted while idle) — harmless now.
  for (auto& [w, slot] : slots)
    if (slot.live) transport.shutdown(w);
  while (live > 0) {
    WorkerEvent ev = transport.wait_any();
    if (ev.kind != WorkerEvent::Kind::exited)
      throw OrchestratorError(
          "orchestrate: worker " + std::to_string(ev.worker) +
          " reported a lease after every lease was collected");
    auto it = slots.find(ev.worker);
    if (it != slots.end() && it->second.live) {
      it->second.live = false;
      --live;
    }
  }

  return merge_shard_reports(plan, reports, labels);
}

}  // namespace ep::core
