// The work-distribution seam: where executors and orchestrators get
// their work items from.
//
// Every layer before this PR assumed a finite, fully-materialized
// InjectionPlan. A WorkSource generalizes that to a *growing* plan
// drained in waves: next_wave() appends the next batch of items (none =
// exhausted), the drain executes them, and absorb() routes the finished
// outcomes back — which is what lets a feedback-driven generator (the
// novelty search in core/search.hpp) decide the next wave from the
// results of the last one. The exhaustive path is one client of the
// seam: PlanWorkSource emits its whole fixed plan as a single wave and
// ignores feedback, so orchestrate()/execute() through it stay
// byte-identical to the pre-seam code paths.
//
// Determinism contract: a source must generate waves as a pure function
// of (its seed/configuration, the absorbed outcomes in stable-id
// order). Outcomes are themselves pure functions of the item, so the
// full item stream — and therefore the merged report — is identical for
// any worker count or data plane.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/wire.hpp"

namespace ep::core {

class WorkSource {
 public:
  virtual ~WorkSource() = default;

  /// The materialized-so-far plan. Items only ever *append* (stable ids
  /// stay stable); references into `plan().items` may be invalidated by
  /// next_wave(), indexes never are.
  [[nodiscard]] virtual const InjectionPlan& plan() const = 0;

  /// Append the next wave of work items to the plan and return their id
  /// range [begin, end). begin == end means the source is exhausted and
  /// the drain should finish up. Called between wave barriers only — a
  /// feedback-driven source sees every prior wave's outcomes absorbed
  /// before it generates the next.
  virtual std::pair<std::size_t, std::size_t> next_wave() = 0;

  /// Route one collected lease report's outcomes back into the source.
  /// Called as reports land (any order within a wave); a source that
  /// scores feedback buffers them and processes in stable-id order at
  /// the wave barrier, keeping generation deterministic.
  virtual void absorb(const ShardReport& report) { (void)report; }

  /// Leased reports replayed from a checkpoint (search --resume):
  /// already-complete waves whose outcomes the final merge still needs.
  /// Consumed once, before the first wave is drained.
  virtual std::vector<ShardReport> take_replayed_reports() { return {}; }
};

/// Today's exhaustive path as a WorkSource: the whole fixed plan in one
/// wave, feedback ignored. The pinned control — everything that drains
/// through this is byte-identical to draining the plan directly.
class PlanWorkSource : public WorkSource {
 public:
  explicit PlanWorkSource(const InjectionPlan& plan) : plan_(plan) {}

  [[nodiscard]] const InjectionPlan& plan() const override { return plan_; }

  std::pair<std::size_t, std::size_t> next_wave() override {
    if (emitted_) return {plan_.items.size(), plan_.items.size()};
    emitted_ = true;
    return {0, plan_.items.size()};
  }

 private:
  const InjectionPlan& plan_;
  bool emitted_ = false;
};

}  // namespace ep::core
