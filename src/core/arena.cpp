#include "core/arena.hpp"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

namespace ep::core {

namespace {

// Header layout (64 bytes):
//   0  magic "EPARENA1"
//   8  u32 byte-order tag
//  12  u32 version
//  16  u64 total bytes (must equal the file size)
//  24  u64 plan offset   (always kHeaderBytes)
//  32  u64 plan length
//  40  u64 segment count
//  48  u64 segment bytes
//  56  u64 segments offset (always plan offset + plan length)
constexpr char kMagic[8] = {'E', 'P', 'A', 'R', 'E', 'N', 'A', '1'};
constexpr std::uint32_t kEndianTag = 0x0A0B0C0D;
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 64;

[[noreturn]] void fail(const std::string& path, const std::string& msg) {
  throw ArenaError("arena '" + path + "': " + msg);
}

[[noreturn]] void sys_fail(const std::string& path, const std::string& what) {
  fail(path, what + ": " + std::strerror(errno));
}

std::uint32_t bswap32(std::uint32_t v) {
  return (v >> 24) | ((v >> 8) & 0xFF00u) | ((v << 8) & 0xFF0000u) |
         (v << 24);
}

void put_u32(std::uint8_t* p, std::size_t off, std::uint32_t v) {
  std::memcpy(p + off, &v, sizeof v);
}
void put_u64(std::uint8_t* p, std::size_t off, std::uint64_t v) {
  std::memcpy(p + off, &v, sizeof v);
}
std::uint32_t get_u32(const std::uint8_t* p, std::size_t off) {
  std::uint32_t v;
  std::memcpy(&v, p + off, sizeof v);
  return v;
}
std::uint64_t get_u64(const std::uint8_t* p, std::size_t off) {
  std::uint64_t v;
  std::memcpy(&v, p + off, sizeof v);
  return v;
}

}  // namespace

ShmArena ShmArena::create(const std::string& path,
                          const std::string& plan_binary,
                          std::size_t segment_count,
                          std::size_t segment_bytes) {
  if (segment_count > 0 && segment_bytes == 0)
    fail(path, "segment_bytes must be > 0 when segments exist");
  ShmArena a;
  a.path_ = path;
  a.fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
  if (a.fd_ < 0) sys_fail(path, "open");
  a.plan_offset_ = kHeaderBytes;
  a.plan_length_ = plan_binary.size();
  a.segments_offset_ = a.plan_offset_ + a.plan_length_;
  a.segment_count_ = segment_count;
  a.segment_bytes_ = segment_bytes;
  a.size_ = a.segments_offset_ + segment_count * segment_bytes;
  if (::ftruncate(a.fd_, static_cast<off_t>(a.size_)) < 0)
    sys_fail(path, "ftruncate");
  void* map = ::mmap(nullptr, a.size_, PROT_READ | PROT_WRITE, MAP_SHARED,
                     a.fd_, 0);
  if (map == MAP_FAILED) sys_fail(path, "mmap");
  a.map_ = static_cast<std::uint8_t*>(map);

  std::memcpy(a.map_, kMagic, sizeof kMagic);
  put_u32(a.map_, 8, kEndianTag);
  put_u32(a.map_, 12, kVersion);
  put_u64(a.map_, 16, a.size_);
  put_u64(a.map_, 24, a.plan_offset_);
  put_u64(a.map_, 32, a.plan_length_);
  put_u64(a.map_, 40, a.segment_count_);
  put_u64(a.map_, 48, a.segment_bytes_);
  put_u64(a.map_, 56, a.segments_offset_);
  std::memcpy(a.map_ + a.plan_offset_, plan_binary.data(),
              plan_binary.size());
  return a;
}

ShmArena ShmArena::open(const std::string& path) {
  ShmArena a;
  a.path_ = path;
  a.fd_ = ::open(path.c_str(), O_RDWR);
  if (a.fd_ < 0) sys_fail(path, "open");
  struct stat st;
  if (::fstat(a.fd_, &st) < 0) sys_fail(path, "fstat");
  a.size_ = static_cast<std::size_t>(st.st_size);
  if (a.size_ < kHeaderBytes)
    fail(path, "truncated header (file holds " + std::to_string(a.size_) +
                   " bytes, need at least " + std::to_string(kHeaderBytes) +
                   ")");
  void* map = ::mmap(nullptr, a.size_, PROT_READ | PROT_WRITE, MAP_SHARED,
                     a.fd_, 0);
  if (map == MAP_FAILED) sys_fail(path, "mmap");
  a.map_ = static_cast<std::uint8_t*>(map);

  if (std::memcmp(a.map_, kMagic, sizeof kMagic) != 0)
    fail(path, "not an arena file (bad magic)");
  std::uint32_t tag = get_u32(a.map_, 8);
  if (tag != kEndianTag) {
    if (bswap32(tag) == kEndianTag)
      fail(path,
           "written with foreign endianness (byte-order tag is "
           "byte-swapped)");
    fail(path, "corrupt byte-order tag");
  }
  std::uint32_t version = get_u32(a.map_, 12);
  if (version != kVersion)
    fail(path, "unsupported arena version " + std::to_string(version) +
                   " (this build reads " + std::to_string(kVersion) + ")");
  std::uint64_t total = get_u64(a.map_, 16);
  if (total != a.size_)
    fail(path, "declares " + std::to_string(total) + " bytes but the file "
                   "holds " + std::to_string(a.size_) + " (truncated?)");
  a.plan_offset_ = static_cast<std::size_t>(get_u64(a.map_, 24));
  a.plan_length_ = static_cast<std::size_t>(get_u64(a.map_, 32));
  a.segment_count_ = static_cast<std::size_t>(get_u64(a.map_, 40));
  a.segment_bytes_ = static_cast<std::size_t>(get_u64(a.map_, 48));
  a.segments_offset_ = static_cast<std::size_t>(get_u64(a.map_, 56));
  // The canonical layout is header | plan | segments, exactly covering
  // the file; anything else means a corrupt or foreign writer.
  if (a.plan_offset_ != kHeaderBytes ||
      a.plan_length_ > a.size_ - a.plan_offset_ ||
      a.segments_offset_ != a.plan_offset_ + a.plan_length_)
    fail(path, "plan region does not fit the file");
  if (a.segment_count_ > 0 && a.segment_bytes_ == 0)
    fail(path, "segment_bytes is 0 with segments present");
  if (a.segment_bytes_ != 0 &&
      (a.segment_count_ > (a.size_ - a.segments_offset_) / a.segment_bytes_ ||
       a.segments_offset_ + a.segment_count_ * a.segment_bytes_ != a.size_))
    fail(path, "segment region does not fit the file");
  if (a.segment_bytes_ == 0 && a.segments_offset_ != a.size_)
    fail(path, "segment region does not fit the file");
  return a;
}

ShmArena::ShmArena(ShmArena&& other) noexcept { *this = std::move(other); }

ShmArena& ShmArena::operator=(ShmArena&& other) noexcept {
  if (this != &other) {
    close();
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    map_ = other.map_;
    size_ = other.size_;
    plan_offset_ = other.plan_offset_;
    plan_length_ = other.plan_length_;
    segments_offset_ = other.segments_offset_;
    segment_count_ = other.segment_count_;
    segment_bytes_ = other.segment_bytes_;
    other.fd_ = -1;
    other.map_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

ShmArena::~ShmArena() { close(); }

void ShmArena::close() noexcept {
  if (map_) ::munmap(map_, size_);
  if (fd_ >= 0) ::close(fd_);
  map_ = nullptr;
  fd_ = -1;
  size_ = 0;
}

std::size_t ShmArena::segment_offset(std::size_t seq) const {
  if (seq >= segment_count_)
    fail(path_, "segment " + std::to_string(seq) + " out of range (arena "
                    "holds " + std::to_string(segment_count_) + ")");
  return segments_offset_ + seq * segment_bytes_;
}

std::uint8_t* ShmArena::segment(std::size_t seq) {
  return map_ + segment_offset(seq);
}

void ShmArena::check_handoff(std::size_t seq, std::size_t offset,
                             std::size_t length) const {
  std::size_t expect = segment_offset(seq);
  if (offset != expect)
    fail(path_, "DONE handoff names offset " + std::to_string(offset) +
                    " but lease " + std::to_string(seq) +
                    "'s segment starts at " + std::to_string(expect));
  if (length > segment_bytes_)
    fail(path_, "DONE handoff names " + std::to_string(length) +
                    " bytes but segments hold at most " +
                    std::to_string(segment_bytes_));
}

}  // namespace ep::core
