#include "core/executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/injector.hpp"
#include "core/oracle.hpp"
#include "os/path.hpp"
#include "util/rng.hpp"

namespace ep::core {

Exploitability analyze_exploitability(const Scenario& scenario,
                                      const InteractionPoint& point,
                                      const FaultRef& fault) {
  auto world = scenario.build();  // judge against the *benign* world
  return analyze_exploitability(*world, point, fault);
}

Exploitability analyze_exploitability(const TargetWorld& world,
                                      const InteractionPoint& point,
                                      const FaultRef& fault) {
  Exploitability e;
  const os::Kernel& k = world.kernel;

  auto nonroot_user_who_can = [&](const std::string& p,
                                  os::Perm perm) -> std::string {
    for (const auto& [uid, info] : k.users()) {
      if (uid == os::kRootUid) continue;
      if (k.uid_can(uid, info.second, p, perm)) return info.first;
    }
    return {};
  };

  if (fault.kind == FaultKind::indirect) {
    switch (fault.indirect->category) {
      case IndirectCategory::user_input:
        e.nonroot_feasible = true;
        e.actor = "invoking user";
        e.note = "argument values are chosen by whoever runs the program";
        break;
      case IndirectCategory::environment_variable:
        e.nonroot_feasible = true;
        e.actor = "invoking user";
        e.note = "the invoker controls the process environment";
        break;
      case IndirectCategory::file_system_input: {
        std::string who = nonroot_user_who_can(point.object, os::Perm::write);
        e.nonroot_feasible = !who.empty();
        e.actor = who.empty() ? "root only" : who + " (writer of the input)";
        e.note = who.empty()
                     ? "the input file is protected; only root can seed it"
                     : "whoever writes the input file controls the value";
        break;
      }
      case IndirectCategory::network_input:
        e.nonroot_feasible = true;
        e.actor = "remote peer";
        e.note = "network input is attacker-supplied by definition";
        break;
      case IndirectCategory::process_input:
        e.nonroot_feasible = true;
        e.actor = "local peer process";
        e.note = "IPC input comes from another local process";
        break;
    }
    return e;
  }

  const DirectFault& f = *fault.direct;
  const std::string& obj = point.object;
  std::string parent = os::path::dirname(obj);

  switch (f.attribute) {
    case EnvAttribute::file_existence:
    case EnvAttribute::symbolic_link:
    case EnvAttribute::file_name_invariance: {
      if (point.call == "regread" || point.call == "regwrite") {
        const reg::Key* key = world.registry.find(obj);
        e.nonroot_feasible = key && key->acl.everyone_write;
        e.actor = e.nonroot_feasible ? "any local user" : "administrator only";
        e.note = "registry key ACL decides who can replace the value";
        break;
      }
      std::string who = nonroot_user_who_can(parent, os::Perm::write);
      e.nonroot_feasible = !who.empty();
      e.actor = who.empty() ? "root only" : who;
      e.note = who.empty()
                   ? "requires write access to " + parent +
                         ", which only root has"
                   : who + " can manipulate directory entries in " + parent;
      break;
    }
    case EnvAttribute::file_content_invariance: {
      if (point.call == "regread" || point.call == "regwrite") {
        const reg::Key* key = world.registry.find(obj);
        e.nonroot_feasible = key && key->acl.everyone_write;
        e.actor = e.nonroot_feasible ? "any local user" : "administrator only";
        e.note = "everyone-write ACL lets any user set the value";
        break;
      }
      std::string who = nonroot_user_who_can(obj, os::Perm::write);
      if (who.empty()) who = nonroot_user_who_can(parent, os::Perm::write);
      e.nonroot_feasible = !who.empty();
      e.actor = who.empty() ? "root only" : who;
      e.note = who.empty() ? "the file and its directory are protected"
                           : who + " can rewrite the content";
      break;
    }
    case EnvAttribute::file_permission: {
      auto r = k.vfs().resolve(obj, "/", os::kRootUid, os::kRootGid);
      if (r.ok()) {
        const os::Inode& node = k.vfs().inode(r.value());
        e.nonroot_feasible = node.uid != os::kRootUid;
        e.actor = e.nonroot_feasible ? "owner (" + k.user_name(node.uid) + ")"
                                     : "root only";
        e.note = "chmod requires ownership";
      } else {
        e.actor = "root only";
        e.note = "object absent in the benign world";
      }
      break;
    }
    case EnvAttribute::file_ownership:
      e.actor = "root only";
      e.note = "chown requires root privilege";
      break;
    case EnvAttribute::working_directory:
      e.nonroot_feasible = true;
      e.actor = "invoking user";
      e.note = "the invoker chooses the starting directory";
      break;
    case EnvAttribute::net_message_authenticity:
    case EnvAttribute::net_protocol:
    case EnvAttribute::net_socket_share:
    case EnvAttribute::net_service_availability:
    case EnvAttribute::net_entity_trustability:
      // The regkey-trustability extension reuses this attribute id.
      if (point.call == "regread" || point.call == "regwrite") {
        const reg::Key* key = world.registry.find(obj);
        e.nonroot_feasible = key && key->acl.everyone_write;
        e.actor = e.nonroot_feasible ? "any local user" : "administrator only";
        e.note = "whoever may write the key controls where it points";
      } else {
        e.nonroot_feasible = true;
        e.actor = "remote peer";
        e.note = "network conditions are attacker-influenced";
      }
      break;
    case EnvAttribute::proc_message_authenticity:
    case EnvAttribute::proc_trustability:
    case EnvAttribute::proc_service_availability:
      e.nonroot_feasible = true;
      e.actor = "local peer process";
      e.note = "helper-process conditions are controlled by its owner";
      break;
  }
  return e;
}

void parallel_for(std::size_t count, int jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  std::size_t workers =
      jobs < 1 ? 1 : std::min<std::size_t>(static_cast<std::size_t>(jobs),
                                           count);
  std::vector<std::exception_ptr> errors(count);
  if (workers <= 1) {
    // Same contract as the threaded path: every index is attempted, then
    // the lowest-index failure is rethrown.
    for (std::size_t i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
    for (auto& e : errors)
      if (e) std::rethrow_exception(e);
    return;
  }

  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  try {
    for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(drain);
  } catch (...) {
    // Thread-resource exhaustion: let the already-spawned workers finish
    // the queue (destroying a joinable thread would terminate). A
    // collected per-index failure still wins over the transient spawn
    // error, keeping failure behavior deterministic.
    drain();
    for (auto& t : pool) t.join();
    for (auto& e : errors)
      if (e) std::rethrow_exception(e);
    throw;
  }
  drain();
  for (auto& t : pool) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

Executor::Executor(const Scenario& scenario) : scenario_(scenario) {
  if (!scenario_.build || !scenario_.run)
    throw std::logic_error("Executor: scenario must define build and run");
}

InjectionOutcome Executor::run_item(const InjectionPlan& plan,
                                    const WorkItem& item,
                                    const ExecutorOptions& opts) const {
  const InteractionPoint& point = plan.point_of(item);
  const WorldSnapshot* snap =
      opts.use_world_cache ? plan.snapshot.get() : nullptr;
  // Per-worker clone arena: one TargetWorld-sized allocation reused for
  // every cached-path run this thread drains. thread_local keeps the
  // thread-confinement rule — no two runs ever share the storage — and
  // the fresh-build path is untouched (build() sizes vary by scenario).
  thread_local WorldArena arena;
  TargetWorld* world = nullptr;
  std::unique_ptr<TargetWorld> owned;
  if (snap && opts.pool_worlds) {
    world = &arena.instantiate(*snap);
  } else {
    owned = snap ? snap->instantiate() : scenario_.build();
    world = owned.get();
  }
  world->kernel.set_redzone_audit(opts.use_redzone);
  // The perturbation parameter (search-generated items): a nonzero param
  // deterministically mutates the hints this run injects with — the
  // outcome stays a pure function of (point, fault, param).
  ScenarioHints hints = scenario_.hints;
  if (item.param != 0) {
    Rng prng(item.param);
    hints.long_length = std::size_t(16) << prng.below(10);
  }
  auto injector = std::make_shared<Injector>(*world, point.site, item.fault,
                                             hints);
  auto oracle = std::make_shared<SecurityOracle>(scenario_.policy);
  world->kernel.add_interposer(injector);
  world->kernel.add_interposer(oracle);

  InjectionOutcome out;
  out.site = point.site;
  out.call = point.call;
  out.object = point.object;
  out.kind = item.fault.kind;
  out.fault_name = item.fault.name();
  out.fault_description = item.fault.kind == FaultKind::indirect
                              ? item.fault.indirect->description
                              : item.fault.direct->description;
  out.exit_code = scenario_.run(*world);
  // Teardown redzone sweep, while this run's oracle is still installed —
  // corruption that never crossed another syscall surfaces here, into the
  // same violation list. A no-op when the audit is off.
  world->validate_redzones();
  out.fired = injector->fired();
  out.violations = oracle->violations();
  out.violated = !out.violations.empty();
  out.crashed = oracle->crash_count() > 0;
  out.overflows = oracle->overflow_count();

  std::string broken = world->kernel.vfs().check_invariants();
  if (!broken.empty())
    throw std::logic_error("VFS invariant broken after injection '" +
                           out.fault_name + "': " + broken);

  if (out.violated)
    // The frozen prototype *is* the benign world, so the cached path
    // answers "who could effect this perturbation?" without a build.
    out.exploit = snap
                      ? analyze_exploitability(snap->prototype(), point,
                                               item.fault)
                      : analyze_exploitability(scenario_, point, item.fault);
  return out;
}

CampaignResult result_skeleton(const InjectionPlan& plan) {
  CampaignResult result;
  result.scenario_name = plan.scenario_name;
  result.points = plan.points;
  result.benign_violations = plan.benign_violations;
  result.perturbed_site_tags = plan.perturbed_site_tags;
  result.injections.resize(plan.items.size());
  return result;
}

CampaignResult Executor::execute(const InjectionPlan& plan,
                                 const ExecutorOptions& opts) const {
  CampaignResult result = result_skeleton(plan);
  parallel_for(plan.items.size(), opts.jobs, [&](std::size_t i) {
    result.injections[i] = run_item(plan, plan.items[i], opts);
  });
  return result;
}

std::vector<InjectionOutcome> Executor::execute_subset(
    const InjectionPlan& plan, const std::vector<std::size_t>& item_ids,
    const ExecutorOptions& opts) const {
  return execute_subset_checkpointed(plan, item_ids, 0, nullptr, nullptr,
                                     opts);
}

std::vector<InjectionOutcome> Executor::execute_subset_checkpointed(
    const InjectionPlan& plan, const std::vector<std::size_t>& item_ids,
    std::size_t checkpoint_every,
    const std::function<void(const std::vector<InjectionOutcome>&)>&
        on_checkpoint,
    const std::function<bool()>& stop, const ExecutorOptions& opts) const {
  const std::size_t total = item_ids.size();
  const std::size_t chunk = checkpoint_every ? checkpoint_every : total;
  std::vector<InjectionOutcome> outcomes;
  outcomes.reserve(total);
  for (std::size_t off = 0; off < total; off += chunk) {
    if (stop && stop()) break;  // preempted: keep the completed prefix
    const std::size_t n = std::min(chunk, total - off);
    std::vector<InjectionOutcome> part(n);
    parallel_for(n, opts.jobs, [&](std::size_t i) {
      part[i] = run_item(plan, plan.items.at(item_ids[off + i]), opts);
    });
    for (auto& o : part) outcomes.push_back(std::move(o));
    if (on_checkpoint && outcomes.size() < total) on_checkpoint(outcomes);
  }
  return outcomes;
}

}  // namespace ep::core
