#include "core/coverage.hpp"

namespace ep::core {

AdequacyRegion classify(const AdequacyPoint& p, const AdequacyThresholds& t) {
  const bool high_ic = p.interaction_coverage >= t.interaction;
  const bool high_fc = p.fault_coverage >= t.fault;
  if (!high_ic && !high_fc) return AdequacyRegion::point1_inadequate;
  if (!high_ic && high_fc) return AdequacyRegion::point2_unexplored;
  if (high_ic && !high_fc) return AdequacyRegion::point3_insecure;
  return AdequacyRegion::point4_adequate_secure;
}

std::string_view to_string(AdequacyRegion r) {
  switch (r) {
    case AdequacyRegion::point1_inadequate: return "point-1 (inadequate)";
    case AdequacyRegion::point2_unexplored:
      return "point-2 (inadequate: interactions unexplored)";
    case AdequacyRegion::point3_insecure: return "point-3 (insecure)";
    case AdequacyRegion::point4_adequate_secure:
      return "point-4 (adequate and secure)";
  }
  return "?";
}

std::string_view region_meaning(AdequacyRegion r) {
  switch (r) {
    case AdequacyRegion::point1_inadequate:
      return "testing resulted in low interaction and fault coverage; "
             "testing is inadequate";
    case AdequacyRegion::point2_unexplored:
      return "fault coverage is high but only a few interactions were "
             "perturbed; behavior under other perturbations is unknown";
    case AdequacyRegion::point3_insecure:
      return "fault coverage is so low the application is likely "
             "vulnerable to perturbation of the environment";
    case AdequacyRegion::point4_adequate_secure:
      return "high interaction and fault coverage: the safest region";
  }
  return "?";
}

}  // namespace ep::core
