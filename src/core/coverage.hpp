// The two-dimensional test adequacy metric (Section 3.2, Figure 2).
//
//   * interaction coverage — perturbed interaction points / all discovered
//     interaction points: how much of the environment-application surface
//     the test explored;
//   * fault coverage — tolerated faults / injected faults: how much of
//     what was thrown at the program it withstood.
//
// Figure 2 marks four significant regions; classify() reproduces them.
#pragma once

#include <string>
#include <string_view>

namespace ep::core {

struct AdequacyPoint {
  double interaction_coverage = 0.0;  // x axis
  double fault_coverage = 0.0;        // y axis
};

enum class AdequacyRegion {
  point1_inadequate,     // low interaction, low fault coverage
  point2_unexplored,     // high fault coverage but few interactions tested
  point3_insecure,       // well explored, poorly tolerated
  point4_adequate_secure  // well explored, well tolerated
};

struct AdequacyThresholds {
  double interaction = 0.5;
  double fault = 0.8;
};

AdequacyRegion classify(const AdequacyPoint& p,
                        const AdequacyThresholds& t = {});

std::string_view to_string(AdequacyRegion r);

/// The paper's interpretation of each region, for reports.
std::string_view region_meaning(AdequacyRegion r);

}  // namespace ep::core
