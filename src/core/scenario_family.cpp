#include "core/scenario_family.hpp"

#include <set>

#include "core/wire.hpp"

namespace ep::core {
namespace {

bool name_safe(const std::string& value) {
  if (value.empty()) return false;
  for (char c : value) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '.' ||
              c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

void validate(const ScenarioFamily& family) {
  auto bad = [&family](const std::string& msg) -> WireError {
    return WireError("scenario family '" + family.name + "': " + msg);
  };
  if (!name_safe(family.name)) throw bad("family name is not name-safe");
  if (family.axes.empty()) throw bad("family has no axes");
  if (!family.materialize) throw bad("family has no materialize function");
  std::set<std::string> names;
  for (const FamilyAxis& axis : family.axes) {
    if (axis.name.empty()) throw bad("axis with empty name");
    if (!names.insert(axis.name).second)
      throw bad("duplicate axis \"" + axis.name + "\"");
    if (axis.values.empty())
      throw bad("axis \"" + axis.name + "\" has no values");
    std::set<std::string> values;
    for (const std::string& v : axis.values) {
      if (!name_safe(v))
        throw bad("axis \"" + axis.name + "\" value \"" + v +
                  "\" is not name-safe (lowercase alphanumerics, '.', '_', "
                  "'-')");
      if (!values.insert(v).second)
        throw bad("axis \"" + axis.name + "\" repeats value \"" + v + "\"");
    }
  }
}

}  // namespace

std::size_t family_size(const ScenarioFamily& family) {
  std::size_t n = family.axes.empty() ? 0 : 1;
  for (const FamilyAxis& axis : family.axes) n *= axis.values.size();
  return n;
}

std::string family_member_name(const ScenarioFamily& family,
                               const FamilyPoint& point) {
  std::string name = family.name;
  for (const FamilyAxis& axis : family.axes) {
    auto it = point.find(axis.name);
    name += "-";
    name += it == point.end() ? "?" : it->second;
  }
  return name;
}

std::vector<FamilyPoint> family_grid(const ScenarioFamily& family) {
  validate(family);
  // Odometer walk: the last axis varies fastest, so the order (and with
  // it every generated name and suite position) is a pure function of
  // the family definition.
  std::vector<FamilyPoint> grid;
  std::vector<std::size_t> idx(family.axes.size(), 0);
  for (;;) {
    FamilyPoint point;
    for (std::size_t a = 0; a < family.axes.size(); ++a)
      point[family.axes[a].name] = family.axes[a].values[idx[a]];
    grid.push_back(std::move(point));
    std::size_t a = family.axes.size();
    while (a > 0) {
      --a;
      if (++idx[a] < family.axes[a].values.size()) break;
      idx[a] = 0;
      if (a == 0) return grid;
    }
  }
}

std::vector<ScenarioSpec> expand_family(const ScenarioFamily& family) {
  std::vector<ScenarioSpec> specs;
  for (const FamilyPoint& point : family_grid(family)) {
    ScenarioSpec spec = family.materialize(point);
    spec.name = family_member_name(family, point);
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace ep::core
