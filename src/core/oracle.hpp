// The security oracle (procedure step 8: "detect if security policy is
// violated").
//
// The oracle is a hook that watches completed interactions of *privileged*
// processes (euid != ruid, i.e. set-uid programs serving an unprivileged
// invoker; scenarios may widen this to all processes for daemons) and
// evaluates six policies:
//
//   P1 integrity        — the process mutated or deleted a pre-existing
//                         object its invoker could not write, or created
//                         entries in a directory the invoker could not
//                         write outside the scenario's sanctioned roots.
//   P2 confidentiality  — content the invoker could not read (or content
//                         of a declared secret file) appeared on output.
//   P3 untrusted exec   — the process executed a binary an unprivileged
//                         third party owns or can rewrite.
//   P4 memory safety    — a fixed-buffer overflow fired in the process
//                         (the simulated equivalent of an exploitable
//                         smash).
//   P5 trust            — the process consumed data from an entity marked
//                         untrusted.
//   P6 authorization    — the process performed its privileged effect
//                         although ground truth (message authenticity,
//                         protocol order, socket exclusivity, a live
//                         trusted authority's confirmation) did not
//                         support it.
//   P7 redzone          — a token-poisoned guard region past a buffer
//                         (fixed app buffer, Vfs content, registry value)
//                         was overwritten: silent memory corruption that
//                         never self-reported (see os/redzone.hpp and
//                         docs/ORACLES.md). Reported for *any* process —
//                         corruption is environment-state damage, so the
//                         privilege gap that scopes P1–P6 does not apply,
//                         and teardown sweeps carry no process at all.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "os/hooks.hpp"
#include "os/kernel.hpp"

namespace ep::core {

enum class Policy {
  integrity,
  confidentiality,
  untrusted_exec,
  memory_safety,
  trust,
  authorization,
  // Appended in PR 8; the binary wire codec encodes policies by ordinal,
  // so new values must go at the end (see core/wire_binary.cpp).
  redzone_corruption,
};

std::string_view to_string(Policy p);

struct Violation {
  Policy policy;
  os::Site site;
  std::string call;
  std::string object;
  std::string detail;
};

struct PolicySpec {
  /// Canonical directory prefixes where privileged creation of new files
  /// is the program's sanctioned purpose (lpr's spool, turnin's submit
  /// directory). Mutating *pre-existing* objects is never sanctioned.
  std::vector<std::string> write_sanction_roots;
  /// Files whose content is secret regardless of permission arithmetic.
  std::vector<std::string> secret_files;
  /// Watch every process, not only set-uid ones (network daemons run with
  /// euid == ruid but serve remote principals).
  bool watch_all = false;
  /// privileged_action requires a prior genuine AUTH_OK (P6).
  bool require_auth_confirmation = false;
};

class SecurityOracle : public os::Interposer {
 public:
  explicit SecurityOracle(PolicySpec spec);

  void after(os::Kernel& k, os::SyscallCtx& ctx, Err result) override;

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool violated() const { return !violations_.empty(); }
  [[nodiscard]] int crash_count() const { return crashes_; }
  [[nodiscard]] int overflow_count() const { return overflows_; }
  [[nodiscard]] int redzone_count() const { return redzones_; }

 private:
  [[nodiscard]] bool watched(const os::Process& p) const;
  [[nodiscard]] bool sanctioned(const std::string& canonical) const;
  [[nodiscard]] bool is_secret_file(const std::string& canonical) const;
  void report(Policy policy, const os::SyscallCtx& ctx, std::string detail);

  PolicySpec spec_;
  std::vector<Violation> violations_;
  std::set<std::string> dedup_;
  /// Objects this run's processes created themselves; writing to your own
  /// fresh file is not a violation.
  std::set<os::Ino> created_;
  /// Secret payloads read so far; matched against later output.
  std::vector<std::string> secrets_read_;
  // Channel ground truth accumulated across the run (P6).
  bool consumed_unauthentic_ = false;
  bool protocol_violated_ = false;
  bool peer_untrusted_ = false;
  bool socket_shared_ = false;
  bool auth_confirmed_ = false;
  int crashes_ = 0;
  int overflows_ = 0;
  int redzones_ = 0;
};

}  // namespace ep::core
