// The Environment-Application Interaction (EAI) fault model (Section 2).
//
// Environment faults split by the medium through which they reach the
// application:
//
//   * INDIRECT faults enter as *input* and propagate via internal entities
//     (Figure 1a). Classified by input origin into five categories
//     (Section 2.3.1), each with semantics-aware perturbations (Table 5).
//   * DIRECT faults stay in the *environment entity* whose attributes the
//     application acts on (Figure 1b). Classified by entity into three
//     categories (Section 2.3.2), perturbed per attribute (Table 6).
#pragma once

#include <string_view>

namespace ep::core {

enum class FaultKind { indirect, direct };

/// Table 2 columns: where indirect faults originate.
enum class IndirectCategory {
  user_input,
  environment_variable,
  file_system_input,
  network_input,
  process_input,
};

/// Table 3 columns: which environment entity direct faults live in.
enum class DirectEntity { file_system, network, process };

/// The "semantic attribute" column of Table 5: what an input *means*
/// decides which perturbations are likely to cause security violations.
enum class InputSemantic {
  file_name,        // file or directory name
  command,          // command string to be executed
  path_list,        // execution path / library path ($PATH and kin)
  permission_mask,  // umask-style mask
  file_extension,
  ip_address,
  packet,
  host_name,
  dns_reply,
  ipc_message,
};

/// The "attribute" column of Table 6: which facet of an environment
/// entity a direct fault perturbs.
enum class EnvAttribute {
  // file system entity
  file_existence,
  file_ownership,
  file_permission,
  symbolic_link,
  file_content_invariance,
  file_name_invariance,
  working_directory,
  // network entity
  net_message_authenticity,
  net_protocol,
  net_socket_share,
  net_service_availability,
  net_entity_trustability,
  // process entity
  proc_message_authenticity,
  proc_trustability,
  proc_service_availability,
};

/// What kind of object an interaction point touches; used to select the
/// applicable direct faults when the scenario does not override.
enum class ObjectKind {
  file,
  directory,
  exec_binary,
  net_inbound,   // accepted connection / recv
  net_service,   // outbound connection to a network service
  ipc_service,   // helper process / local IPC
  registry_key,
  user_input,    // argv access: no direct faults, only indirect
  env_var,       // getenv: no direct faults, only indirect
  none,
};

std::string_view to_string(FaultKind k);
std::string_view to_string(IndirectCategory c);
std::string_view to_string(DirectEntity e);
std::string_view to_string(InputSemantic s);
std::string_view to_string(EnvAttribute a);
std::string_view to_string(ObjectKind k);

}  // namespace ep::core
