// Coverage-guided environment search: the open-ended WorkSource.
//
// The exhaustive pipeline drains every (site, fault) pair once. Search
// inverts the economics: given a *budget* of injection runs (usually a
// small fraction of the exhaustive item count), spend each run where it
// is most likely to teach something new. SearchWorkSource generates work
// items wave by wave from a candidate frontier — every trace point
// crossed with its planned faults, plus perturbation-parameter mutations
// of items whose outcomes proved interesting — and a NoveltyScorer ranks
// the frontier by what the campaign has *not* yet observed: environment
// classes never fired, sites never violated, faults never attempted,
// verdict shapes never seen. This is the paper's adequacy argument run
// in reverse: instead of measuring class coverage after an exhaustive
// sweep, the scheduler chases it during the sweep.
//
// Determinism contract (the same one the rest of the engine keeps):
// the generated item stream is a pure function of (seed, budget, batch,
// the base plan, absorbed outcomes in stable-id order). Outcomes are
// themselves pure functions of (point, fault, param), so the same seed
// and budget produce a byte-identical search report for any worker
// count, job count, or data plane — and a checkpointed search resumed
// after a kill -9 re-generates the exact waves it lost.
//
// Layering: core must not depend on vulndb, so the environment-class
// axis arrives as SearchOptions::classify — a (fault kind, fault name)
// -> class-label function the CLI wires to vulndb::coverage_class. An
// empty classify (or an empty label) simply mutes that scoring term.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/wire.hpp"
#include "core/work_source.hpp"

namespace ep::core {

struct SearchOptions {
  /// Seed of the whole search: wave selection ties, parameter mutation.
  std::uint64_t seed = 1;
  /// Total work items the search may generate (the run count). The
  /// search stops early when the frontier is exhausted first.
  std::size_t budget = 0;
  /// Wave size cap: how many items are generated per wave barrier. The
  /// feedback loop turns once per wave, so smaller batches steer harder
  /// and larger batches parallelize better.
  std::size_t batch = 16;
  /// Environment-class axis for novelty scoring: (fault kind, fault
  /// name) -> class label, empty label = unclassified. The CLI passes
  /// vulndb::coverage_class; unset mutes the class term.
  std::function<std::string(FaultKind, const std::string&)> classify;
};

/// What the search has observed so far, and how novel a candidate looks
/// against it. Shared across scenarios in a family search (one scorer,
/// sequential members) so a class fired by member one stops paying rent
/// in member two.
class NoveltyScorer {
 public:
  /// Score a candidate item against the seen sets. Terms, largest first:
  /// +8 its environment class never fired, +2 its site never violated,
  /// +1 its fault never attempted, +1 it is a stock-hints item
  /// (param == 0 — base candidates before mutations of equal novelty).
  [[nodiscard]] int score(const std::string& class_label,
                          const std::string& site_tag,
                          const std::string& fault_key,
                          std::uint64_t param) const;

  void note_attempt(const std::string& fault_key);
  /// Absorb one finished outcome. Returns true when the outcome's
  /// verdict signature (fault, fired, violated, crashed, exit code) was
  /// never seen before — the generator's cue to enqueue mutations.
  bool note_outcome(const std::string& class_label,
                    const std::string& site_tag,
                    const std::string& fault_key,
                    const InjectionOutcome& outcome);

  [[nodiscard]] const std::set<std::string>& fired_classes() const {
    return fired_classes_;
  }

 private:
  friend class SearchWorkSource;  // wave-tentative copies for diversity
  std::set<std::string> fired_classes_;
  std::set<std::string> violated_sites_;
  std::set<std::string> attempted_faults_;
  std::set<std::string> verdict_sigs_;
};

/// One parsed search-state work item (docs/SEARCH.md, the `search-state`
/// wire kind): enough to validate a resumed search's re-generated stream
/// against what the checkpoint recorded, without resolving faults.
struct SearchStateItem {
  std::size_t point = 0;
  std::string site;
  FaultKind kind = FaultKind::direct;
  std::string fault;
  std::uint64_t param = 0;
};

/// A parsed search-state checkpoint: the search's identity (scenario,
/// seed, budget, batch), every item generated so far with wave
/// boundaries, and the columnar outcomes of every completed item.
struct SearchState {
  int schema_version = 1;
  std::string scenario_name;
  std::uint64_t seed = 1;
  std::size_t budget = 0;
  std::size_t batch = 0;
  std::vector<SearchStateItem> items;
  std::vector<std::size_t> wave_ends;
  std::vector<std::size_t> completed_ids;  // ascending, parallel outcomes
  std::vector<InjectionOutcome> outcomes;
};

/// Canonical JSON for a search-state document: parse -> re-serialize
/// reproduces the bytes verbatim (the SearchDoc test holds docs/SEARCH.md
/// to the format). schema_version 1, kind "search-state".
std::string search_state_to_json(const SearchState& state);

/// Parse and validate a search-state document. Throws WireError on
/// malformed input, a foreign kind/version, out-of-range points or wave
/// boundaries, or completed ids that are unordered or out of range.
SearchState search_state_from_json(const std::string& text);

/// The open-ended WorkSource: novelty-ranked waves over the candidate
/// frontier. Construct from the *exhaustive* plan of the same scenario
/// and options (the base plan's items are the initial frontier, its
/// points/snapshot carry over), optionally sharing a scorer across a
/// family; then drain through run_search() or orchestrate_source().
class SearchWorkSource : public WorkSource {
 public:
  /// `base` is the scenario's exhaustive plan (every candidate, param
  /// 0). A non-null `shared_scorer` must outlive the source and makes a
  /// family search cumulative; null means the source owns its scorer.
  SearchWorkSource(InjectionPlan base, SearchOptions opts,
                   NoveltyScorer* shared_scorer = nullptr);

  [[nodiscard]] const InjectionPlan& plan() const override { return plan_; }
  std::pair<std::size_t, std::size_t> next_wave() override;
  void absorb(const ShardReport& report) override;
  std::vector<ShardReport> take_replayed_reports() override;

  /// Invoked at every wave barrier (including the final, empty one) with
  /// the full current state — the caller persists it (atomically) so a
  /// killed search can resume. Set *after* resume(): replayed waves do
  /// not re-checkpoint.
  void set_checkpoint(std::function<void(const SearchState&)> fn) {
    checkpoint_ = std::move(fn);
  }

  /// Process any pending feedback and checkpoint now — the clean-stop
  /// path (--stop-after), which ends a search between barriers without
  /// losing the last drained wave.
  void checkpoint_now();

  /// Replay a checkpoint: re-generate each fully-completed recorded wave
  /// (feeding the recorded outcomes back through the scorer), validate
  /// the re-generated items match the recording byte for byte, and queue
  /// synthesized lease reports for take_replayed_reports(). Call once,
  /// directly after construction. Throws WireError when the state
  /// belongs to a different search (scenario/seed/budget/batch) or the
  /// regeneration diverges from the recorded items.
  void resume(const SearchState& state);

  /// The current state (what a checkpoint would record).
  [[nodiscard]] SearchState state() const;

  [[nodiscard]] std::size_t waves_generated() const {
    return wave_ends_.size();
  }

 private:
  struct Candidate {
    WorkItem item;
    std::size_t seq = 0;  // insertion order: the deterministic tiebreak
    bool queued = false;
  };

  void process_feedback();
  std::pair<std::size_t, std::size_t> generate_wave();
  [[nodiscard]] std::string fault_key(const WorkItem& item) const;
  [[nodiscard]] std::string class_of(const WorkItem& item) const;

  InjectionPlan plan_;  // grows; items [0, n) are the generated stream
  SearchOptions opts_;
  NoveltyScorer own_scorer_;
  NoveltyScorer* scorer_;
  std::vector<Candidate> frontier_;
  std::size_t next_seq_ = 0;
  std::vector<std::size_t> wave_ends_;
  /// Outcomes landed since the last barrier, keyed by stable id; merged
  /// into outcomes_ (and the scorer) in id order at the barrier.
  std::map<std::size_t, InjectionOutcome> pending_;
  std::map<std::size_t, InjectionOutcome> outcomes_;
  std::vector<ShardReport> replayed_;
  std::function<void(const SearchState&)> checkpoint_;
};

/// The local (in-process) search drive, mirroring what
/// orchestrate_source() does across a worker fleet: loop next_wave ->
/// run_lease -> absorb until the source is exhausted or
/// `stop_after_waves` barriers have passed, then merge every wave's
/// lease report — replayed checkpoint waves included — into the
/// CampaignResult. `stopped` is true when the wave cap ended the search
/// early; the merged result is only assembled on a completed search.
struct SearchRunResult {
  CampaignResult result;
  std::size_t waves = 0;
  bool stopped = false;
};

SearchRunResult run_search(const Executor& executor, SearchWorkSource& source,
                           const ExecutorOptions& opts = {},
                           std::size_t stop_after_waves = 0);

}  // namespace ep::core
