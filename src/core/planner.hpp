// Procedure steps 1-3 as a standalone layer.
//
// The Planner performs the trace-discovery run (step 3), applies the
// scenario's site judgments and step 9's coverage target, and plans the
// fault list per interaction point — emitting an InjectionPlan: an
// ordered, immutable list of (site, fault) work items. Everything that
// consults shared state (the fault catalog, the scenario's SiteSpec map,
// the sampling RNG) happens here, on one thread, before any injection
// runs; the Executor then drains the plan with no planning decisions left
// to make. That split is what allows the drain to be parallel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/snapshot.hpp"

namespace ep::core {

/// Version of the plan/shard-report wire format (docs/WIRE_FORMAT.md).
/// Bumped whenever a serialized field changes meaning, is removed, or a
/// new required field appears; readers reject unknown versions rather
/// than guess. Version 2 admits the `redzone-corruption` violation policy
/// (a version-1 reader would choke on the new name); the reader accepts 1
/// and 2 — the body layout is unchanged.
inline constexpr int kPlanSchemaVersion = 2;

/// One (interaction point, fault) pair: exactly one rebuild-and-rerun
/// cycle of procedure steps 4-8. `param` is the perturbation parameter:
/// 0 means the scenario's stock hints (every exhaustive-plan item), any
/// other value seeds a deterministic hint mutation before the run (the
/// search layer's third mutation axis — see core/search.hpp). The
/// outcome of an item is a pure function of (point, fault, param).
struct WorkItem {
  std::size_t point_index = 0;  // into InjectionPlan::points
  FaultRef fault;
  std::uint64_t param = 0;
};

/// The planner's output: everything an executor needs to run the campaign,
/// with no further decisions to make. Work items are in plan order —
/// selected points in trace order, faults in catalog order — and executor
/// output order equals item order regardless of how many workers drain it.
struct InjectionPlan {
  std::string scenario_name;
  std::vector<InteractionPoint> points;  // step 3: all discovered
  std::vector<Violation> benign_violations;
  /// Sites that count as perturbed once the plan is drained (includes
  /// equivalence-class co-members when merging was requested).
  std::set<std::string> perturbed_site_tags;
  std::vector<WorkItem> items;
  /// Frozen prototype world, set when the scenario is snapshot-safe and
  /// the campaign asked for world caching: the executor clones it per run
  /// instead of calling scenario.build(). Not serialized — a plan rebuilt
  /// from JSON on another machine re-freezes its own prototype from the
  /// local Scenario (see refreeze_snapshot in core/wire.hpp); the
  /// snapshot is a local amortization, not plan semantics.
  std::shared_ptr<const WorldSnapshot> snapshot;

  [[nodiscard]] const InteractionPoint& point_of(const WorkItem& w) const {
    return points[w.point_index];
  }
  /// Machine-readable form of the plan (docs/WIRE_FORMAT.md). The plan is
  /// the engine's unit of distribution: a serialized plan can be split
  /// across processes or machines and each shard drained independently.
  /// Work item i carries the stable id i (dense, in plan order); shard
  /// K/N (1-based, as on the CLI) owns the items with id % N == K-1.
  /// Canonical output: parsing with
  /// plan_from_json (core/wire.hpp) and re-serializing reproduces the
  /// bytes verbatim.
  [[nodiscard]] std::string to_json() const;
};

class Planner {
 public:
  /// `scenario` must outlive the planner (the campaign owns it). The
  /// catalog reference is resolved once here, so no worker thread ever
  /// touches the singleton accessor.
  explicit Planner(const Scenario& scenario);

  [[nodiscard]] InjectionPlan plan(const CampaignOptions& opts = {}) const;

  /// Step 3's per-point fault decision — both kinds where the point has
  /// input, direct only where it does not, honoring the scenario's
  /// explicit fault lists and not-applicable judgments.
  [[nodiscard]] std::vector<FaultRef> plan_faults(
      const InteractionPoint& point) const;

 private:
  const Scenario& scenario_;
  const FaultCatalog& catalog_;
};

}  // namespace ep::core
