// Plain-text rendering of campaign results, in the shape of the paper's
// Section 4 write-ups: interaction points, perturbations, violations,
// coverage metrics, adequacy region, and the assumption analysis.
#pragma once

#include <string>

#include "core/campaign.hpp"

namespace ep::core {

struct ShardReport;

/// Full report: per-site table + violations + metrics.
std::string render_report(const CampaignResult& r);

/// One summary line, e.g.
/// "turnin: 8 interaction points, 41 perturbations, 9 violations".
std::string render_summary_line(const CampaignResult& r);

/// One summary line for a drained shard (core/wire.hpp), e.g.
/// "turnin shard 2/3: 14 of 41 work items, 3 violations".
std::string render_shard_summary(const ShardReport& s);

/// Machine-readable form (JSON) of the complete result: interaction
/// points, every injection outcome with its violations and assumption
/// analysis, and the Section 3.2/3.3 metrics, stamped with the wire
/// format's schema_version. For dashboards and CI; `epa_cli merge --json`
/// emits exactly this, so merged and single-process JSON diff cleanly.
std::string render_json(const CampaignResult& r);

}  // namespace ep::core
