#include "core/scheduler.hpp"

namespace ep::core {

int SweepResult::total_points() const {
  int c = 0;
  for (const auto& r : results) c += static_cast<int>(r.points.size());
  return c;
}

int SweepResult::total_injections() const {
  int c = 0;
  for (const auto& r : results) c += r.n();
  return c;
}

int SweepResult::total_violations() const {
  int c = 0;
  for (const auto& r : results) c += r.violation_count();
  return c;
}

int SweepResult::total_exploitable() const {
  int c = 0;
  for (const auto& r : results) c += static_cast<int>(r.exploitable().size());
  return c;
}

double SweepResult::mean_vulnerability_score() const {
  int n = total_injections();
  return n == 0 ? 0.0 : static_cast<double>(total_violations()) / n;
}

void MultiCampaign::add(Scenario scenario) {
  scenarios_.push_back(std::move(scenario));
}

std::vector<InjectionPlan> MultiCampaign::plan_all(
    const SweepOptions& opts) const {
  // Resolve the catalog singleton once, before any worker thread exists;
  // after this line every thread sees only the completed, immutable
  // catalog.
  (void)FaultCatalog::standard();

  std::vector<InjectionPlan> plans(scenarios_.size());
  parallel_for(scenarios_.size(), opts.jobs, [&](std::size_t i) {
    plans[i] = Planner(scenarios_[i]).plan(opts.campaign);
  });
  return plans;
}

SweepResult MultiCampaign::run(const SweepOptions& opts) const {
  SweepResult sweep;
  const std::size_t n = scenarios_.size();

  // ---- Phase 1: plan every scenario (one trace run each) -----------------
  std::vector<InjectionPlan> plans = plan_all(opts);

  // ---- Phase 2: drain one global queue of (scenario, item) ---------------
  std::vector<Executor> executors;
  executors.reserve(n);
  sweep.results.resize(n);
  struct Slot {
    std::size_t scenario;
    std::size_t item;
  };
  std::vector<Slot> queue;
  for (std::size_t si = 0; si < n; ++si) {
    executors.emplace_back(scenarios_[si]);
    sweep.results[si] = result_skeleton(plans[si]);
    for (std::size_t ii = 0; ii < plans[si].items.size(); ++ii)
      queue.push_back({si, ii});
  }
  ExecutorOptions eopts;
  eopts.use_world_cache = opts.campaign.use_world_cache;
  eopts.use_redzone = opts.campaign.use_redzone;
  parallel_for(queue.size(), opts.jobs, [&](std::size_t q) {
    const Slot& s = queue[q];
    sweep.results[s.scenario].injections[s.item] =
        executors[s.scenario].run_item(plans[s.scenario],
                                       plans[s.scenario].items[s.item],
                                       eopts);
  });
  return sweep;
}

}  // namespace ep::core
