// LocalProcessTransport: the orchestrator's first Transport — epa_cli
// worker processes on this machine, pipes as the control wire, files as
// the data wire.
//
// Each spawn() forks one `epa_cli worker PLAN` process with its stdin
// and stdout connected to the coordinator. The protocol is line-based
// and deliberately shell-debuggable:
//
//   coordinator -> worker:   LEASE <begin> <end> <report-path>\n
//                            EXIT\n            (or just EOF)
//   worker -> coordinator:   DONE <begin> <end>\n
//
// The worker parses the plan and re-freezes the COW prototype once at
// startup, then drains leases until told to stop; it writes each lease's
// ShardReport atomically to <report-path> *before* printing DONE, so a
// DONE line always names a readable, complete report. Worker stderr is
// inherited (progress and diagnostics pass through); stdout carries
// protocol lines only.
//
// Exit statuses mirror run-shard: 0 clean, 1 failure, 4 preempted
// (SIGTERM — the worker finishes its in-flight lease, then refuses the
// next one). wait_any() turns a death into an `exited` event with
// `preempted` set for exit 4 and the preemption signals, so the
// orchestrator can tell "re-lease and replace" from "this will only
// fail again".
#pragma once

#include <cstddef>
#include <string>
#include <sys/types.h>
#include <vector>

#include "core/orchestrator.hpp"

namespace ep::core {

struct LocalProcessConfig {
  /// The worker binary — normally the running epa_cli itself
  /// (self_exe()).
  std::string epa_cli;
  /// Serialized plan every worker parses once at startup.
  std::string plan_path;
  /// Directory lease report files are written to.
  std::string out_dir;
  /// Lease files are named <file_prefix>.lease<seq>.json.
  std::string file_prefix = "plan";
  /// --jobs forwarded to each worker.
  int jobs = 1;
  /// --no-world-cache forwarded when false.
  bool use_world_cache = true;
  /// --preempt-after forwarded when > 0: each worker self-preempts
  /// (exit 4) when handed its (N+1)th lease — the CI determinism hook
  /// for the kill-and-re-lease path.
  long long preempt_after = 0;
};

class LocalProcessTransport : public Transport {
 public:
  explicit LocalProcessTransport(LocalProcessConfig config);
  /// Kills (SIGTERM) and reaps any worker still alive — orchestrate()
  /// shuts workers down cleanly on success; this is the error-path net.
  ~LocalProcessTransport() override;

  LocalProcessTransport(const LocalProcessTransport&) = delete;
  LocalProcessTransport& operator=(const LocalProcessTransport&) = delete;

  std::size_t spawn() override;
  void submit(std::size_t worker, const Lease& lease) override;
  WorkerEvent wait_any() override;
  void shutdown(std::size_t worker) override;

  /// The absolute path of the running binary (/proc/self/exe), falling
  /// back to `argv0` where the link is unavailable — how `epa_cli
  /// orchestrate` names the worker binary without guessing.
  static std::string self_exe(const char* argv0);

 private:
  struct Proc {
    pid_t pid = -1;
    int in_fd = -1;   // worker stdin (coordinator writes)
    int out_fd = -1;  // worker stdout (coordinator reads)
    std::string buf;  // partial protocol line
    bool alive = false;
    bool saw_eof = false;
    bool has_lease = false;
    Lease lease;
    std::string lease_path;
  };

  std::string lease_path(const Lease& lease) const;
  WorkerEvent handle_line(std::size_t worker, const std::string& line);
  WorkerEvent reap(std::size_t worker);

  LocalProcessConfig config_;
  std::vector<Proc> procs_;
};

}  // namespace ep::core
