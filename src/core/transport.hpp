// LocalProcessTransport: the orchestrator's first Transport — epa_cli
// worker processes on this machine, pipes as the control wire, files as
// the data wire.
//
// Each spawn() forks one `epa_cli worker PLAN` process with its stdin
// and stdout connected to the coordinator. The control protocol is the
// versioned line grammar in core/protocol.hpp (HELLO handshake, LEASE
// grants, PING heartbeats, STEAL/YIELD work stealing, DONE results) —
// deliberately shell-debuggable, and byte-identical to what the tcp
// transport frames over sockets.
//
// The worker parses the plan and re-freezes the COW prototype once at
// startup, then drains leases until told to stop; it writes each lease's
// ShardReport atomically to the LEASE-named target *before* printing
// DONE, so a DONE line always names a readable, complete report. Worker
// stderr is inherited (progress and diagnostics pass through); stdout
// carries protocol lines only, starting with `HELLO 3`.
//
// Exit statuses mirror run-shard: 0 clean, 1 failure, 4 preempted
// (SIGTERM — the worker finishes its in-flight lease, then refuses the
// next one). wait_any() classifies a death into a typed event: exit 0 is
// `exited`, exit 4 and the preemption signals are `preempted` (re-lease
// and replace), anything else is `died` (would only fail again).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <sys/types.h>
#include <vector>

#include "core/arena.hpp"
#include "core/orchestrator.hpp"
#include "core/protocol.hpp"

namespace ep::core {

struct LocalProcessConfig {
  /// The worker binary — normally the running epa_cli itself
  /// (self_exe()).
  std::string epa_cli;
  /// Serialized plan every worker parses once at startup (JSON data
  /// plane; the shm transport ships the plan inside its arena instead).
  std::string plan_path;
  /// Directory lease report files (and the shm transport's arena file)
  /// are written to.
  std::string out_dir;
  /// Lease files are named <file_prefix>.lease<seq>.json; the shm
  /// transport's arena is <file_prefix>.arena.
  std::string file_prefix = "plan";
  /// --jobs forwarded to each worker.
  int jobs = 1;
  /// --no-world-cache forwarded when false.
  bool use_world_cache = true;
  /// --no-redzone forwarded when false (the redzone memory oracle is on
  /// by default; see os/redzone.hpp).
  bool use_redzone = true;
  /// --preempt-after forwarded when > 0: each worker self-preempts
  /// (exit 4) — after serving N leases, or, with `checkpoint` set, after
  /// N checkpoint flushes (which lands the preemption *mid-lease*). The
  /// CI determinism hook for the kill-and-re-lease path.
  long long preempt_after = 0;
  /// --checkpoint forwarded when > 0: workers drain leases in chunks of
  /// K items, flush a valid partial report after each chunk (so a
  /// preemption mid-lease leaves a re-leasable partial behind), send a
  /// PING heartbeat, and poll for STEAL — checkpointing is what makes
  /// the deadman and work stealing live.
  long long checkpoint = 0;
  /// --drain-delay-ms forwarded when > 0: each worker sleeps this long
  /// before every checkpoint chunk. A testing hook that manufactures
  /// deterministic stragglers for the work-stealing path.
  long long drain_delay_ms = 0;
  /// --scenario-file forwarded when set: workers compile the declarative
  /// spec instead of resolving the plan's scenario name through the
  /// registry — how an orchestrated run drives a spec-file-only scenario.
  std::string scenario_file;
};

/// The JSON-pipe data plane. Subclasses swap the data plane (how the
/// plan reaches workers and how reports come back) by overriding the
/// protected hooks; the process plumbing — fork/exec, poll, protocol
/// dispatch, exit-status classification — is shared.
class LocalProcessTransport : public Transport {
 public:
  explicit LocalProcessTransport(LocalProcessConfig config);
  /// Kills (SIGTERM) and reaps any worker still alive — orchestrate()
  /// shuts workers down cleanly on success; this is the error-path net.
  ~LocalProcessTransport() override;

  LocalProcessTransport(const LocalProcessTransport&) = delete;
  LocalProcessTransport& operator=(const LocalProcessTransport&) = delete;

  std::optional<std::size_t> spawn() override;
  void submit(std::size_t worker, const Lease& lease) override;
  void steal(std::size_t worker) override;
  /// FEEDBACK line down the worker's stdin — the search plane's item
  /// append. Shared by the pipe and shm data planes (both drive workers
  /// over stdin); the item spec rides as one token (wire.hpp's
  /// feedback_spec()).
  void feedback(std::size_t worker, const InjectionPlan& plan,
                std::size_t begin, std::size_t end) override;
  std::optional<WorkerEvent> wait_any(long timeout_ms) override;
  void shutdown(std::size_t worker) override;
  /// SIGKILL + reap, immediately — the deadman's path for a worker that
  /// is wedged (stopped, not exited) and will never answer SIGTERM.
  void kill(std::size_t worker) override;

  /// The absolute path of the running binary (/proc/self/exe), falling
  /// back to `argv0` where the link is unavailable — how `epa_cli
  /// orchestrate` names the worker binary without guessing.
  static std::string self_exe(const char* argv0);

 protected:
  struct Proc {
    pid_t pid = -1;
    int in_fd = -1;   // worker stdin (coordinator writes)
    int out_fd = -1;  // worker stdout (coordinator reads)
    std::string buf;  // partial protocol line
    bool alive = false;
    bool saw_eof = false;
    bool said_hello = false;  // HELLO handshake completed
    bool has_lease = false;
    Lease lease;  // shrinks in place when the worker YIELDs a tail
    std::string lease_token;  // what LEASE named as the report target
  };

  /// Worker argv after the binary path. Base: worker <plan> --jobs N
  /// [...]; the shm transport substitutes --arena for the plan file.
  virtual std::vector<std::string> worker_args() const;
  /// The report-target token of a LEASE line: a report file path (base)
  /// or the shm transport's @<seq> segment reference.
  virtual std::string lease_token(const Lease& lease) const;
  /// Turn a parsed DONE message into ev.report + ev.label. Base: no
  /// handoff allowed, the report is read from the lease file. Shm: the
  /// (offset, length) handoff is decoded from the coordinator's own
  /// mapping. Throws OrchestratorError/WireError on a broken worker.
  virtual void load_report(const Proc& p, const ProtocolMsg& done,
                           WorkerEvent& ev);
  /// Common flags (--jobs, --no-world-cache, --no-redzone,
  /// --preempt-after, --checkpoint, --drain-delay-ms) every data plane
  /// forwards.
  void append_common_args(std::vector<std::string>& args) const;

  const LocalProcessConfig& config() const { return config_; }

 private:
  WorkerEvent handle_line(std::size_t worker, const std::string& line);
  WorkerEvent reap(std::size_t worker);

  LocalProcessConfig config_;
  std::vector<Proc> procs_;
};

/// The same-host shared-memory data plane (core/arena.hpp): the binary
/// plan is frozen into an mmap'd arena once, each lease owns a fixed
/// arena segment indexed by its seq, workers write binary reports into
/// their lease's segment directly, and DONE carries only an
/// (offset, length) handoff — zero parse and zero copy on the
/// coordinator's hot path, and no JSON anywhere between the processes.
class ShmLocalTransport : public LocalProcessTransport {
 public:
  /// `leases` must be the exact partition orchestrate() will schedule
  /// (lease_partition()) — segments are indexed by lease seq and sized
  /// for the largest lease. kMaxLeaseSplits extra segments are reserved
  /// past the partition so stolen-tail leases (fresh seqs) have arena
  /// homes too. Creates <out_dir>/<file_prefix>.arena.
  ShmLocalTransport(LocalProcessConfig config, const InjectionPlan& plan,
                    const std::vector<Lease>& leases);

  const std::string& arena_path() const { return arena_.path(); }

 protected:
  std::vector<std::string> worker_args() const override;
  std::string lease_token(const Lease& lease) const override;
  void load_report(const Proc& p, const ProtocolMsg& done,
                   WorkerEvent& ev) override;

 private:
  ShmArena arena_;
};

/// How large a lease's arena segment is for a lease of `lease_items`
/// items: a fixed base plus a generous per-item budget. A report that
/// still does not fit is a clean worker error, not a truncation.
std::size_t arena_segment_bytes(std::size_t lease_items);

}  // namespace ep::core
