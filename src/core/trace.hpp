// Interaction-point discovery (procedure step 3).
//
// A plain trace run — no faults — with this recorder attached yields the
// list of environment-application interaction points: the distinct call
// sites at which the program touched its environment, whether each asks
// for input, and what object it names.
#pragma once

#include <string>
#include <vector>

#include "core/fault_model.hpp"
#include "os/hooks.hpp"

namespace ep::core {

struct InteractionPoint {
  os::Site site;
  std::string call;
  std::string object;  // path/service/key as first seen
  bool has_input = false;
  ObjectKind kind = ObjectKind::none;
  InputSemantic semantic = InputSemantic::file_name;
  std::string channel_kind;
  int hits = 0;  // how many times the site executed during the trace
};

class TraceRecorder : public os::Interposer {
 public:
  TraceRecorder() = default;
  /// Record only sites whose Site::unit matches: the program under test.
  /// Children it execs (tar, payloads) still run through the hooks — the
  /// oracle watches them — but their call sites are not perturbation
  /// targets of *this* program's campaign.
  explicit TraceRecorder(std::string unit_filter)
      : unit_filter_(std::move(unit_filter)) {}

  void before(os::Kernel& k, os::SyscallCtx& ctx) override;

  [[nodiscard]] const std::vector<InteractionPoint>& points() const {
    return points_;
  }

 private:
  std::string unit_filter_;
  std::vector<InteractionPoint> points_;  // first-seen order
};

}  // namespace ep::core
