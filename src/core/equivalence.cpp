#include "core/equivalence.hpp"

namespace ep::core {

namespace {

/// Calls that operate on an already-open descriptor and never re-resolve
/// a path: the only ones that may fold into an earlier point's class.
bool descriptor_bound(const InteractionPoint& p) {
  return p.call == "read" || p.call == "write";
}

}  // namespace

std::vector<EquivalenceClass> find_equivalence_classes(
    const std::vector<InteractionPoint>& points) {
  std::vector<EquivalenceClass> classes;
  for (const auto& p : points) {
    EquivalenceClass* home = nullptr;
    for (auto& c : classes) {
      if (descriptor_bound(p) && c.object == p.object && c.kind == p.kind &&
          c.has_input == p.has_input &&
          (!c.has_input || c.semantic == p.semantic)) {
        home = &c;
        break;
      }
    }
    if (home == nullptr) {
      EquivalenceClass c;
      c.object = p.object;
      c.kind = p.kind;
      c.has_input = p.has_input;
      c.semantic = p.semantic;
      classes.push_back(std::move(c));
      home = &classes.back();
    }
    home->members.push_back(&p);
  }
  return classes;
}

std::string render_equivalence(
    const std::vector<EquivalenceClass>& classes) {
  std::string out;
  std::size_t points = 0;
  for (const auto& c : classes) points += c.members.size();
  out += std::to_string(points) + " interaction points -> " +
         std::to_string(classes.size()) + " equivalence classes\n";
  for (const auto& c : classes) {
    out += "  [" + std::string(to_string(c.kind)) + "] " + c.object + ": ";
    for (std::size_t i = 0; i < c.members.size(); ++i) {
      if (i) out += ", ";
      out += c.members[i]->site.tag;
      if (i == 0 && c.members.size() > 1) out += " (representative)";
    }
    out += "\n";
  }
  return out;
}

}  // namespace ep::core
