// The worker line protocol — one grammar shared by every transport.
//
// PR 5/6 grew the control protocol ad hoc: each transport parsed DONE
// lines with sscanf and stuffed everything after "DONE <b> <e>" into a
// string remainder its subclass hook re-parsed. A third transport (tcp)
// would have meant a third copy of that parsing, so the protocol is now
// a module of its own: typed messages, one parser, one formatter set,
// used by the coordinator-side transports (pipe, shm, tcp) and by the
// worker loop in epa_cli alike. Over pipes a message is one newline-
// terminated line; over tcp the same line rides as one length-prefixed
// frame — the bytes between the delimiters are identical.
//
// Version 3 grammar (version 1 had no HELLO/PING/STEAL/YIELD/BYE;
// version 3 adds FEEDBACK, the search-plane item append):
//
//   worker -> coordinator
//     HELLO <version>                 first message a worker ever sends
//     PING                            liveness, sent at checkpoint flushes
//     YIELD <mid> <end>               answer to STEAL: the worker keeps
//                                     [begin, mid) and surrenders
//                                     [mid, end) of its in-flight lease
//     DONE <begin> <end>              lease finished (JSON/tcp data plane)
//     DONE <begin> <end> <off> <len>  lease finished, shm arena handoff
//     BYE <status>                    tcp only: exit status before closing
//
//   coordinator -> worker
//     LEASE <begin> <end> <target>    target: report path, @<seq> arena
//                                     segment, or `-` (report returns as
//                                     a tcp frame)
//     FEEDBACK <begin> <end> <spec>   append search-generated work items
//                                     [begin, end) to the worker's plan
//                                     before their lease arrives; <spec>
//                                     is one space-free token of comma-
//                                     separated point:kind:fault:param
//                                     entries (kind is `i` or `d`)
//     STEAL                           yield the undrained tail of the
//                                     current lease at the next checkpoint
//     EXIT                            finish up and exit 0
//
// A worker that opens with anything but `HELLO <kWorkerProtocolVersion>`
// is rejected with a diagnostic naming both versions — old fleets fail
// fast instead of wedging mid-campaign.
#pragma once

#include <cstddef>
#include <string>

namespace ep::core {

/// The control-protocol version this build speaks. Bumped whenever the
/// grammar above changes incompatibly; the HELLO handshake enforces
/// agreement before any lease is granted.
inline constexpr long long kWorkerProtocolVersion = 3;

/// One parsed protocol message, either direction.
struct ProtocolMsg {
  enum class Type {
    hello,  ///< version
    ping,
    yield,  ///< begin = mid (the split point), end
    done,   ///< begin, end [+ offset/length when has_handoff]
    bye,    ///< status
    lease,  ///< begin, end, target
    feedback,  ///< begin, end, target = the item spec token
    steal,
    exit_cmd,
  };
  Type type = Type::ping;
  long long version = 0;        // hello
  std::size_t begin = 0;        // lease, done, feedback; yield's split point
  std::size_t end = 0;          // lease, done, yield, feedback
  std::string target;           // lease; feedback's item spec
  bool has_handoff = false;     // done: shm (offset, length) present
  std::size_t offset = 0;       // done, shm handoff
  std::size_t length = 0;       // done, shm handoff
  int status = 0;               // bye
};

/// Parse one message (no trailing newline). Returns false when the line
/// matches no production — the caller decides whether that is a protocol
/// error or a worker gone rogue.
bool parse_protocol_line(const std::string& line, ProtocolMsg* out);

/// Formatters — the exact bytes between the delimiters, no newline.
/// parse_protocol_line() round-trips each of these verbatim (the
/// WireFormatDoc test holds the documented grammar to that).
std::string format_hello(long long version);
std::string format_ping();
std::string format_yield(std::size_t mid, std::size_t end);
std::string format_done(std::size_t begin, std::size_t end);
std::string format_done(std::size_t begin, std::size_t end,
                        std::size_t offset, std::size_t length);
std::string format_bye(int status);
std::string format_lease(std::size_t begin, std::size_t end,
                         const std::string& target);
std::string format_feedback(std::size_t begin, std::size_t end,
                            const std::string& spec);
std::string format_steal();
std::string format_exit();

/// Format one message back to its line — the inverse of
/// parse_protocol_line(), used by the doc test to prove the documented
/// transcript is canonical.
std::string format_protocol_msg(const ProtocolMsg& msg);

}  // namespace ep::core
