// Scenario hints: the concrete adversarial values perturbation generators
// substitute into faults. The catalog describes fault *shapes* ("make the
// file a symbolic link to a target the attacker chooses"); the hints say
// what the attacker would choose in this world (which victim file, which
// directory they control, how long "too long" is).
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "os/types.hpp"

namespace ep::core {

struct ScenarioHints {
  /// The local malicious user of the threat model.
  os::Uid attacker_uid = 666;
  os::Gid attacker_gid = 666;
  /// A directory the attacker controls (exists in the benign world).
  std::string attacker_dir = "/tmp/attacker";
  /// Integrity victim: the file a clobbering attack would target.
  std::string symlink_victim = "/etc/passwd";
  /// Confidentiality victim: the file a disclosure attack would target.
  std::string secret_victim = "/etc/shadow";
  /// Directory victim for perturbations of directory objects.
  std::string dir_victim = "/etc";
  /// An attacker-owned executable planted in attacker_dir (used by the
  /// untrusted-path and symlink-on-binary perturbations).
  std::string evil_program = "/tmp/attacker/evil";
  /// Length used by the change-length faults.
  std::size_t long_length = 4096;
  /// Per-site payloads for the content-invariance fault: scenarios supply
  /// the tampered content that is *meaningful* for the file read at that
  /// site (e.g. a config whose paths now point into attacker_dir). Keyed
  /// by site tag; absent sites get a generic tamper line.
  std::map<std::string, std::string> content_payloads;
  /// Per-site symlink targets for the symbolic-link fault, when the most
  /// damaging target is scenario-specific (e.g. link the config file to an
  /// attacker-authored config rather than to a secret). Keyed by site tag.
  std::map<std::string, std::string> link_victims;
};

}  // namespace ep::core
