#include "net/network.hpp"

#include <algorithm>

namespace ep::net {

using os::SyscallCtx;

void Network::define_service(ServiceDef def) {
  services_[def.name] = std::move(def);
}

void Network::set_client_script(PeerScript script) {
  script_ = std::move(script);
}

void Network::add_host(const std::string& hostname, const std::string& ip) {
  hosts_[hostname] = ip;
}

void Network::set_dns_reply(const std::string& hostname,
                            const std::string& reply) {
  dns_override_[hostname] = reply;
}

void Network::set_service_available(const std::string& name, bool available) {
  auto it = services_.find(name);
  if (it != services_.end()) it->second.available = available;
}

void Network::set_service_trusted(const std::string& name, bool trusted) {
  auto it = services_.find(name);
  if (it != services_.end()) it->second.trusted = trusted;
}

void Network::spoof_next_inbound(const std::string& claimed_peer) {
  spoof_next_ = true;
  spoof_claimed_ = claimed_peer;
}

void Network::perturb_protocol(ProtocolFault fault) {
  if (!script_ || script_->inbound.empty()) return;
  auto& in = script_->inbound;
  switch (fault) {
    case ProtocolFault::omit_step:
      // Drop the middle step (for an auth protocol, the credential step —
      // the omission attackers actually try).
      in.erase(in.begin() + static_cast<long>(in.size() / 2));
      break;
    case ProtocolFault::extra_step: {
      Message extra;
      extra.from = script_->peer;
      extra.type = "EXTRA";
      extra.payload = "unexpected protocol step";
      in.insert(in.begin() + static_cast<long>(in.size() / 2), extra);
      break;
    }
    case ProtocolFault::reorder_steps:
      if (in.size() >= 2) std::swap(in.front(), in.back());
      break;
  }
}

void Network::share_inbound_socket() {
  share_next_inbound_ = true;
  for (auto& [s, ch] : channels_)
    if (ch.inbound) ch.shared = true;
}

void Network::distrust_inbound() {
  if (script_) distrust_inbound_ = true;
  for (auto& [s, ch] : channels_)
    if (ch.inbound) ch.peer_untrusted = true;
}

bool Network::service_exists(const std::string& name) const {
  return services_.count(name) != 0;
}

bool Network::service_available(const std::string& name) const {
  auto it = services_.find(name);
  return it != services_.end() && it->second.available;
}

SysResult<Sock> Network::accept(os::Kernel& k, const os::Site& site,
                                os::Pid pid) {
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "accept";
  ctx.path = script_ ? script_->peer : "";
  ctx.channel_kind = script_ && script_->kind == ChannelKind::ipc ? "ipc" : "network";
  k.dispatch_before(ctx);
  if (ctx.force_fail) {
    k.dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  if (!script_) {
    k.dispatch_after(ctx, Err::conn);
    return Err::conn;
  }
  Sock s = next_sock_++;
  Channel ch;
  ch.peer_or_service = script_->peer;
  ch.kind = script_->kind;
  ch.inbound = true;
  ch.shared = share_next_inbound_;
  ch.peer_untrusted = distrust_inbound_;
  share_next_inbound_ = false;
  channels_[s] = ch;
  ctx.net_socket_shared = ch.shared;
  k.dispatch_after(ctx, Err::ok);
  return s;
}

SysResult<Message> Network::recv(os::Kernel& k, const os::Site& site,
                                 os::Pid pid, Sock s) {
  auto chit = channels_.find(s);
  if (chit == channels_.end()) return Err::badf;
  Channel& ch = chit->second;
  if (!ch.inbound || !script_) return Err::badf;

  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "recv";
  ctx.path = ch.peer_or_service;
  ctx.has_input = true;
  ctx.channel_kind = ch.kind == ChannelKind::ipc ? "ipc" : "network";
  k.dispatch_before(ctx);
  if (ctx.force_fail) {
    k.dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  if (ch.cursor >= script_->inbound.size()) {
    k.dispatch_after(ctx, Err::conn);
    return Err::conn;
  }
  Message msg = script_->inbound[ch.cursor++];
  if (spoof_next_) {
    // The spoof perturbation: the wire says the message came from the
    // expected peer, but it did not.
    msg.authentic = false;
    msg.from = spoof_claimed_.empty() ? ch.peer_or_service : spoof_claimed_;
    spoof_next_ = false;
  }
  // Ground truth for the oracle: does this message land where the protocol
  // specification says the conversation should be?
  if (!script_->expected_protocol.empty()) {
    bool in_order = ch.protocol_pos < script_->expected_protocol.size() &&
                    script_->expected_protocol[ch.protocol_pos] == msg.type;
    if (in_order)
      ++ch.protocol_pos;
    else
      ctx.net_protocol_violation = true;
  }
  ctx.net_unauthentic = !msg.authentic;
  ctx.net_socket_shared = ch.shared;
  ctx.net_peer_untrusted = ch.peer_untrusted;
  ctx.data = msg.payload;
  ctx.input = &ctx.data;
  ctx.aux = msg.type;
  k.dispatch_after(ctx, Err::ok);
  msg.payload = ctx.data;  // indirect faults rewrite the payload
  return msg;
}

SysStatus Network::send(os::Kernel& k, const os::Site& site, os::Pid pid,
                        Sock s, const Message& msg) {
  auto chit = channels_.find(s);
  if (chit == channels_.end()) return Err::badf;
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "send";
  ctx.path = chit->second.peer_or_service;
  ctx.aux = msg.type;
  ctx.data = msg.payload;
  ctx.net_socket_shared = chit->second.shared;
  k.dispatch_before(ctx);
  if (ctx.force_fail) {
    k.dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  k.dispatch_after(ctx, Err::ok);
  return ok_status();
}

SysResult<Sock> Network::connect(os::Kernel& k, const os::Site& site,
                                 os::Pid pid, const std::string& service) {
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "connect";
  ctx.path = service;
  if (auto kit = services_.find(service); kit != services_.end())
    ctx.channel_kind = kit->second.kind == ChannelKind::ipc ? "ipc" : "network";
  k.dispatch_before(ctx);
  if (ctx.force_fail) {
    k.dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  auto it = services_.find(service);
  if (it == services_.end() || !it->second.available) {
    k.dispatch_after(ctx, Err::conn);
    return Err::conn;
  }
  Sock s = next_sock_++;
  Channel ch;
  ch.peer_or_service = service;
  ch.kind = it->second.kind;
  ch.peer_untrusted = !it->second.trusted;
  channels_[s] = ch;
  ctx.net_peer_untrusted = ch.peer_untrusted;
  k.dispatch_after(ctx, Err::ok);
  return s;
}

SysResult<Message> Network::query(os::Kernel& k, const os::Site& site,
                                  os::Pid pid, Sock s, const Message& msg) {
  auto chit = channels_.find(s);
  if (chit == channels_.end()) return Err::badf;
  Channel& ch = chit->second;
  auto sit = services_.find(ch.peer_or_service);
  if (sit == services_.end()) return Err::badf;

  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "query";
  ctx.path = ch.peer_or_service;
  ctx.aux = msg.type;
  ctx.has_input = true;
  ctx.channel_kind = ch.kind == ChannelKind::ipc ? "ipc" : "network";
  k.dispatch_before(ctx);
  if (ctx.force_fail) {
    k.dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  const ServiceDef& svc = sit->second;
  if (!svc.available) {
    k.dispatch_after(ctx, Err::conn);
    return Err::conn;
  }
  Message reply = svc.handler ? svc.handler(msg) : Message{};
  reply.from = svc.name;
  reply.authentic = true;
  ctx.net_peer_untrusted = !svc.trusted;
  // Only a genuine AUTH_OK from a live, trusted authority counts as
  // confirmation the oracle will accept.
  ctx.net_auth_confirmation = svc.trusted && reply.type == "AUTH_OK";
  ctx.data = reply.payload;
  ctx.input = &ctx.data;
  k.dispatch_after(ctx, Err::ok);
  reply.payload = ctx.data;
  return reply;
}

SysResult<std::string> Network::resolve_host(os::Kernel& k,
                                             const os::Site& site, os::Pid pid,
                                             const std::string& host) {
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "dns";
  ctx.path = host;
  ctx.has_input = true;
  k.dispatch_before(ctx);
  if (ctx.force_fail) {
    k.dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  std::string reply;
  Err e = Err::ok;
  if (auto it = dns_override_.find(host); it != dns_override_.end()) {
    reply = it->second;
  } else if (auto hit = hosts_.find(host); hit != hosts_.end()) {
    reply = hit->second;
  } else {
    e = Err::noent;
  }
  ctx.data = reply;
  ctx.input = &ctx.data;
  k.dispatch_after(ctx, e);
  if (e != Err::ok && ctx.data.empty()) return e;
  return ctx.data;
}

bool Network::socket_shared(Sock s) const {
  auto it = channels_.find(s);
  return it != channels_.end() && it->second.shared;
}

bool Network::peer_trusted(Sock s) const {
  auto it = channels_.find(s);
  return it != channels_.end() && !it->second.peer_untrusted;
}

}  // namespace ep::net
