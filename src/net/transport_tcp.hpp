// TcpTransport: the first *remote* data plane — no shared filesystem,
// no fork. The coordinator listens; workers are started on any host
// (`epa_cli worker --connect host:port`) and dial in. spawn() adopts a
// connection from the accept queue, checks the HELLO handshake, and
// ships the plan down the socket as one binary EPAB frame; lease reports
// ride back as binary frames. The control protocol is the same
// versioned line grammar every transport speaks (core/protocol.hpp) —
// one line per frame instead of one line per '\n'.
//
// Framing is the simplest thing that works on a byte stream: a u32
// little-endian payload length, then the payload. Control frames carry
// protocol-line text; a DONE control frame is followed immediately by
// one binary frame holding the lease's ShardReport (EPAB bytes).
//
// Death has no exit status here, only silence and resets, so the
// classification is wire-level: a worker announces its exit with
// `BYE <status>` before closing (0 clean, 4 preempted, else failure); a
// connection that drops without BYE is a lost host — preempted, and the
// orchestrator's deadman covers the worse case of a socket that stays
// open while the worker behind it is wedged.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/orchestrator.hpp"

namespace ep::net {

/// --- Frame plumbing, shared by coordinator, worker, and bench ---

/// Incremental frame reassembly: feed() raw bytes, pop() complete
/// payloads. mid_frame() says bytes are buffered but incomplete — how
/// EOF-mid-frame is told apart from EOF at a boundary.
class FrameBuffer {
 public:
  void feed(const char* data, std::size_t n);
  bool pop(std::string* payload);
  bool mid_frame() const { return !buf_.empty(); }

 private:
  std::string buf_;
};

/// Write one length-prefixed frame. Returns false on any write failure
/// (EPIPE, reset) — like the pipe transport's write_line, the death
/// story belongs to the read side, not here.
bool send_frame(int fd, const std::string& payload);

/// Block until one frame is available in `fb` (reading from `fd` as
/// needed), the peer closes (returns false), or `timeout_ms` passes
/// (throws; < 0 = wait forever). EOF mid-frame throws — the peer died
/// mid-sentence.
bool recv_frame(int fd, FrameBuffer* fb, std::string* payload,
                long timeout_ms = -1);

/// Drain whatever is readable *right now* into `fb` without blocking —
/// how a draining worker polls for STEAL between chunks. Returns false
/// once the peer has closed.
bool pump_nonblocking(int fd, FrameBuffer* fb);

/// --- Socket plumbing ---

/// Bind + listen on `port` (0 = ephemeral); `*bound_port` gets the
/// actual port. Throws core::OrchestratorError on failure.
int tcp_listen(int port, int* bound_port);

/// Accept one connection, waiting up to `timeout_ms` (< 0 = forever).
/// Returns -1 on timeout.
int tcp_accept(int listen_fd, long timeout_ms);

/// Connect to host:port. Throws core::OrchestratorError on failure.
int tcp_connect(const std::string& host, int port);

/// --- The transport ---

struct TcpTransportConfig {
  /// Port to listen on; 0 picks an ephemeral port (see port()).
  int listen_port = 0;
  /// When set, the bound port is written here (atomic rename), so
  /// scripts that started the coordinator with --listen 0 can learn
  /// where to aim the workers.
  std::string port_file;
  /// Initial fleet size. The first this-many spawn() calls block up to
  /// accept_timeout_ms for a worker to dial in; later spawns (respawns
  /// after a death) only poll the accept queue briefly — a spare worker
  /// someone pre-started is adopted instantly, and nullopt otherwise
  /// lets the orchestrator continue with the smaller fleet.
  int workers = 2;
  long long accept_timeout_ms = 30000;
  /// How long a freshly accepted connection gets to say HELLO.
  long long handshake_timeout_ms = 10000;
};

class TcpTransport : public core::Transport {
 public:
  /// Binds and listens immediately; `plan` is encoded once and shipped
  /// to every worker that completes the handshake.
  TcpTransport(TcpTransportConfig config, const core::InjectionPlan& plan);
  /// Closes every socket — workers see EOF and exit; none are left
  /// holding a dead coordinator's connection.
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  std::optional<std::size_t> spawn() override;
  void submit(std::size_t worker, const core::Lease& lease) override;
  void steal(std::size_t worker) override;
  /// FEEDBACK as a control frame — same line bytes the pipe transport
  /// writes, framed like every other control message.
  void feedback(std::size_t worker, const core::InjectionPlan& plan,
                std::size_t begin, std::size_t end) override;
  std::optional<core::WorkerEvent> wait_any(long timeout_ms) override;
  void shutdown(std::size_t worker) override;
  void kill(std::size_t worker) override;

  int port() const { return port_; }

 private:
  struct Conn {
    int fd = -1;
    bool alive = false;
    bool saw_eof = false;
    bool said_bye = false;
    int bye_status = 0;
    bool has_lease = false;
    bool awaiting_report = false;  // DONE seen; next frame is the report
    core::Lease lease;
    core::WorkerEvent done_ev;  // built from DONE, completed by the frame
    FrameBuffer frames;
  };

  std::optional<core::WorkerEvent> handle_frame(std::size_t worker,
                                                const std::string& frame);
  core::WorkerEvent reap(std::size_t worker);

  TcpTransportConfig config_;
  std::string plan_wire_;  // binary EPAB plan, shipped per worker
  int listen_fd_ = -1;
  int port_ = 0;
  std::size_t accepted_ = 0;
  std::vector<Conn> conns_;
};

}  // namespace ep::net
