// Message-level network and IPC substrate.
//
// Models exactly the environment entities Table 6's "Network" and
// "Process" rows perturb: message authenticity, protocol step order,
// socket sharing, service availability, and entity trustability. Transport
// details (TCP, name services) are collapsed into scripted conversations —
// the daemon under test recv()s the next inbound message and send()s
// replies — because the methodology only interacts with the *attributes*
// of the exchange, never with wire formats.
//
// Every operation is routed through the kernel's interposer chain, so the
// injector can perturb channels at interaction points and the oracle sees
// ground truth (authenticity, protocol position) it can hold against the
// daemon's later privileged actions.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "os/kernel.hpp"
#include "util/result.hpp"

namespace ep::net {

using Sock = int;

/// What kind of peer a channel talks to; only the fault taxonomy differs
/// (Table 6 classes network peers and local helper processes separately).
enum class ChannelKind { network, ipc };

struct Message {
  std::string from;     // sending entity
  std::string type;     // protocol step, e.g. "HELLO", "AUTH", "CMD"
  std::string payload;
  bool authentic = true;  // ground truth: origin is who `from` claims
};

/// An out-of-process service the daemon can call (auth server, DNS,
/// helper process). The handler runs the service side of an RPC.
struct ServiceDef {
  std::string name;
  ChannelKind kind = ChannelKind::network;
  bool available = true;
  bool trusted = true;
  std::function<Message(const Message&)> handler;
};

/// The scripted inbound conversation for a daemon: the client side of the
/// protocol. `expected_protocol` is the step sequence the protocol
/// specifies; perturbations reorder/omit/extend `inbound` relative to it.
struct PeerScript {
  std::string peer = "client";
  ChannelKind kind = ChannelKind::network;
  std::vector<Message> inbound;
  std::vector<std::string> expected_protocol;
};

/// Protocol perturbations from Table 6: "omitting a protocol step, adding
/// an extra step, reordering steps".
enum class ProtocolFault { omit_step, extra_step, reorder_steps };

class Network {
 public:
  // --- scenario setup ------------------------------------------------------
  void define_service(ServiceDef def);
  void set_client_script(PeerScript script);
  void add_host(const std::string& hostname, const std::string& ip);
  void set_dns_reply(const std::string& hostname, const std::string& reply);

  // --- perturbation surface (used by the Table 6 perturbers) --------------
  void set_service_available(const std::string& name, bool available);
  void set_service_trusted(const std::string& name, bool trusted);
  /// Mark the next not-yet-received inbound message as spoofed.
  void spoof_next_inbound(const std::string& claimed_peer = {});
  void perturb_protocol(ProtocolFault fault);
  /// Socket-share perturbation: the accepted socket is also held by
  /// another (attacker) process. Applies to the next accept and to any
  /// already-accepted inbound channel.
  void share_inbound_socket();
  /// Entity-trustability perturbation for the inbound peer.
  void distrust_inbound();

  [[nodiscard]] bool service_exists(const std::string& name) const;
  [[nodiscard]] bool service_available(const std::string& name) const;

  // --- daemon-side operations (hooked) -------------------------------------
  /// Accept the scripted inbound connection. Err::conn if no script.
  SysResult<Sock> accept(os::Kernel& k, const os::Site& site, os::Pid pid);
  /// Next inbound message. Err::conn when the script is exhausted.
  SysResult<Message> recv(os::Kernel& k, const os::Site& site, os::Pid pid,
                          Sock s);
  SysStatus send(os::Kernel& k, const os::Site& site, os::Pid pid, Sock s,
                 const Message& msg);
  /// Connect to a named service. Err::conn when unavailable.
  SysResult<Sock> connect(os::Kernel& k, const os::Site& site, os::Pid pid,
                          const std::string& service);
  /// One-shot RPC on a connected service socket.
  SysResult<Message> query(os::Kernel& k, const os::Site& site, os::Pid pid,
                           Sock s, const Message& msg);
  /// DNS lookup; the canonical "network input" indirect fault target.
  SysResult<std::string> resolve_host(os::Kernel& k, const os::Site& site,
                                      os::Pid pid, const std::string& host);

  // --- daemon-visible attribute checks (for hardened programs) ------------
  [[nodiscard]] bool socket_shared(Sock s) const;
  [[nodiscard]] bool peer_trusted(Sock s) const;

 private:
  struct Channel {
    std::string peer_or_service;
    ChannelKind kind = ChannelKind::network;
    bool inbound = false;     // accepted from the client script
    bool shared = false;
    bool peer_untrusted = false;
    std::size_t cursor = 0;        // next script message
    std::size_t protocol_pos = 0;  // next expected protocol step
  };

  std::map<std::string, ServiceDef> services_;
  std::optional<PeerScript> script_;
  std::map<std::string, std::string> hosts_;  // hostname -> ip
  std::map<std::string, std::string> dns_override_;
  std::map<Sock, Channel> channels_;
  Sock next_sock_ = 1;
  bool spoof_next_ = false;
  std::string spoof_claimed_;
  bool share_next_inbound_ = false;
  bool distrust_inbound_ = false;
};

}  // namespace ep::net
