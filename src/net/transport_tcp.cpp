#include "net/transport_tcp.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "core/protocol.hpp"

namespace ep::net {

namespace {

using core::OrchestratorError;

/// Anything bigger than this is a corrupt length prefix, not a frame —
/// the largest real payload is a plan or report, megabytes at worst.
constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 30;

[[noreturn]] void sys_fail(const std::string& what) {
  throw OrchestratorError(what + ": " + std::strerror(errno));
}

}  // namespace

void FrameBuffer::feed(const char* data, std::size_t n) {
  buf_.append(data, n);
}

bool FrameBuffer::pop(std::string* payload) {
  if (buf_.size() < 4) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(buf_.data());
  std::size_t len = static_cast<std::size_t>(p[0]) |
                    (static_cast<std::size_t>(p[1]) << 8) |
                    (static_cast<std::size_t>(p[2]) << 16) |
                    (static_cast<std::size_t>(p[3]) << 24);
  if (len > kMaxFrameBytes)
    throw OrchestratorError("tcp: oversized frame (" + std::to_string(len) +
                            " bytes) — corrupt length prefix");
  if (buf_.size() < 4 + len) return false;
  payload->assign(buf_, 4, len);
  buf_.erase(0, 4 + len);
  return true;
}

bool send_frame(int fd, const std::string& payload) {
  if (fd < 0) return false;
  unsigned char header[4] = {
      static_cast<unsigned char>(payload.size() & 0xFF),
      static_cast<unsigned char>((payload.size() >> 8) & 0xFF),
      static_cast<unsigned char>((payload.size() >> 16) & 0xFF),
      static_cast<unsigned char>((payload.size() >> 24) & 0xFF)};
  std::string wire(reinterpret_cast<char*>(header), 4);
  wire += payload;
  std::size_t off = 0;
  while (off < wire.size()) {
    ssize_t n = ::write(fd, wire.data() + off, wire.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // the read side tells the death story
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_frame(int fd, FrameBuffer* fb, std::string* payload,
                long timeout_ms) {
  for (;;) {
    if (fb->pop(payload)) return true;
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1,
                       timeout_ms < 0 ? -1 : static_cast<int>(timeout_ms));
    if (ready < 0) {
      if (errno == EINTR) continue;
      sys_fail("poll");
    }
    if (ready == 0)
      throw OrchestratorError("tcp: timed out waiting for a frame");
    char buf[1 << 16];
    ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      fb->feed(buf, static_cast<std::size_t>(n));
    } else if (n == 0) {
      if (fb->mid_frame())
        throw OrchestratorError("tcp: connection closed mid-frame");
      return false;
    } else if (errno != EINTR && errno != EAGAIN) {
      return false;  // reset: same as a close for our purposes
    }
  }
}

bool pump_nonblocking(int fd, FrameBuffer* fb) {
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 0);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return true;
    }
    if (ready == 0) return true;
    char buf[1 << 16];
    ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      fb->feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return false;
    if (errno == EINTR) continue;
    if (errno == EAGAIN) return true;
    return false;
  }
}

int tcp_listen(int port, int* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    sys_fail("bind to port " + std::to_string(port));
  }
  if (::listen(fd, 64) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    sys_fail("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    sys_fail("getsockname");
  }
  if (bound_port) *bound_port = ntohs(addr.sin_port);
  return fd;
}

int tcp_accept(int listen_fd, long timeout_ms) {
  for (;;) {
    pollfd pfd{listen_fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1,
                       timeout_ms < 0 ? -1 : static_cast<int>(timeout_ms));
    if (ready < 0) {
      if (errno == EINTR) continue;
      sys_fail("poll(listen)");
    }
    if (ready == 0) return -1;
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR || errno == ECONNABORTED) continue;
    sys_fail("accept");
  }
}

int tcp_connect(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &res);
  if (rc != 0)
    throw OrchestratorError("cannot resolve '" + host +
                            "': " + ::gai_strerror(rc));
  int fd = -1;
  int saved = 0;
  for (addrinfo* ai = res; ai; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      saved = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    saved = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    errno = saved;
    sys_fail("connect to " + host + ":" + std::to_string(port));
  }
  return fd;
}

TcpTransport::TcpTransport(TcpTransportConfig config,
                           const core::InjectionPlan& plan)
    : config_(std::move(config)), plan_wire_(core::plan_to_binary(plan)) {
  // A worker can vanish between poll() and write(); EPIPE must surface
  // as a death event, not kill the coordinator.
  std::signal(SIGPIPE, SIG_IGN);
  listen_fd_ = tcp_listen(config_.listen_port, &port_);
  if (!config_.port_file.empty()) {
    // Written via rename so a script polling the file never reads a
    // half-written port number.
    std::string tmp = config_.port_file + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (!f || std::fprintf(f, "%d\n", port_) < 0 || std::fclose(f) != 0)
      sys_fail("write port file '" + config_.port_file + "'");
    if (std::rename(tmp.c_str(), config_.port_file.c_str()) != 0)
      sys_fail("rename port file '" + config_.port_file + "'");
  }
}

TcpTransport::~TcpTransport() {
  for (Conn& c : conns_) {
    if (c.fd >= 0) ::close(c.fd);
    c.fd = -1;
    c.alive = false;
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

std::optional<std::size_t> TcpTransport::spawn() {
  // The initial fleet is worth a long wait; a respawn only polls the
  // accept queue — a pre-started spare is adopted instantly, and nullopt
  // otherwise lets the orchestrator run on with fewer workers.
  const bool initial = accepted_ < static_cast<std::size_t>(config_.workers);
  int fd = tcp_accept(listen_fd_,
                      initial ? config_.accept_timeout_ms : 250);
  if (fd < 0) return std::nullopt;
  ++accepted_;

  Conn c;
  c.fd = fd;
  c.alive = true;
  std::string line;
  try {
    if (!recv_frame(fd, &c.frames, &line, config_.handshake_timeout_ms)) {
      ::close(fd);
      return std::nullopt;  // dud connection: dialed in, said nothing
    }
  } catch (const OrchestratorError&) {
    ::close(fd);
    return std::nullopt;  // timed out or died mid-handshake
  }
  core::ProtocolMsg msg;
  if (!core::parse_protocol_line(line, &msg) ||
      msg.type != core::ProtocolMsg::Type::hello) {
    ::close(fd);
    throw OrchestratorError("tcp worker opened with '" + line +
                            "' instead of HELLO");
  }
  if (msg.version != core::kWorkerProtocolVersion) {
    ::close(fd);
    throw OrchestratorError(
        "tcp worker speaks worker protocol version " +
        std::to_string(msg.version) + "; this coordinator speaks version " +
        std::to_string(core::kWorkerProtocolVersion) +
        " — upgrade so both ends match");
  }
  if (!send_frame(fd, plan_wire_)) {
    ::close(fd);
    return std::nullopt;  // died before taking the plan
  }
  conns_.push_back(std::move(c));
  return conns_.size() - 1;
}

void TcpTransport::submit(std::size_t worker, const core::Lease& lease) {
  if (worker >= conns_.size())
    throw OrchestratorError("submit: unknown worker " +
                            std::to_string(worker));
  Conn& c = conns_[worker];
  c.has_lease = true;
  c.lease = lease;
  // `-` as the target: the report has no name here — it comes back as
  // the frame after DONE.
  send_frame(c.fd, core::format_lease(lease.begin, lease.end, "-"));
}

void TcpTransport::feedback(std::size_t worker,
                            const core::InjectionPlan& plan,
                            std::size_t begin, std::size_t end) {
  if (worker >= conns_.size())
    throw OrchestratorError("feedback: unknown worker " +
                            std::to_string(worker));
  Conn& c = conns_[worker];
  if (!c.alive) return;  // death event will follow anyway
  send_frame(c.fd, core::format_feedback(
                       begin, end, core::feedback_spec(plan, begin, end)));
}

void TcpTransport::steal(std::size_t worker) {
  if (worker >= conns_.size())
    throw OrchestratorError("steal: unknown worker " +
                            std::to_string(worker));
  Conn& c = conns_[worker];
  if (!c.alive) return;
  send_frame(c.fd, core::format_steal());
}

std::optional<core::WorkerEvent> TcpTransport::handle_frame(
    std::size_t worker, const std::string& frame) {
  Conn& c = conns_[worker];

  if (c.awaiting_report) {
    core::WorkerEvent ev = std::move(c.done_ev);
    c.awaiting_report = false;
    c.has_lease = false;
    try {
      ev.report = core::shard_report_from_binary(frame.data(), frame.size());
    } catch (const core::WireError& e) {
      throw OrchestratorError("tcp worker " + std::to_string(worker) +
                              "'s report frame: " + e.what());
    }
    return ev;
  }

  core::ProtocolMsg msg;
  if (!core::parse_protocol_line(frame, &msg))
    throw OrchestratorError("tcp worker " + std::to_string(worker) +
                            ": unexpected control frame '" + frame + "'");

  core::WorkerEvent ev;
  ev.worker = worker;
  switch (msg.type) {
    case core::ProtocolMsg::Type::ping:
      ev.kind = core::WorkerEvent::Kind::heartbeat;
      return ev;
    case core::ProtocolMsg::Type::yield:
      if (!c.has_lease || msg.begin <= c.lease.begin ||
          msg.begin >= c.lease.end || msg.end != c.lease.end)
        throw OrchestratorError("tcp worker " + std::to_string(worker) +
                                ": unexpected yield '" + frame + "'");
      ev.kind = core::WorkerEvent::Kind::lease_yielded;
      ev.lease = c.lease;
      ev.yield_mid = msg.begin;
      c.lease.end = msg.begin;
      return ev;
    case core::ProtocolMsg::Type::done:
      if (!c.has_lease || msg.begin != c.lease.begin ||
          msg.end != c.lease.end || msg.has_handoff)
        throw OrchestratorError("tcp worker " + std::to_string(worker) +
                                ": unexpected control frame '" + frame +
                                "'");
      c.done_ev = core::WorkerEvent{};
      c.done_ev.kind = core::WorkerEvent::Kind::lease_done;
      c.done_ev.worker = worker;
      c.done_ev.lease = c.lease;
      c.done_ev.label = "tcp worker " + std::to_string(worker) + " lease " +
                        std::to_string(c.lease.seq);
      c.awaiting_report = true;
      return std::nullopt;  // the next frame carries the report
    case core::ProtocolMsg::Type::bye:
      // The exit announcement; the event is raised when the close lands.
      c.said_bye = true;
      c.bye_status = msg.status;
      return std::nullopt;
    default:
      throw OrchestratorError("tcp worker " + std::to_string(worker) +
                              ": unexpected control frame '" + frame + "'");
  }
}

core::WorkerEvent TcpTransport::reap(std::size_t worker) {
  Conn& c = conns_[worker];
  if (c.fd >= 0) ::close(c.fd);
  c.fd = -1;
  c.alive = false;
  core::WorkerEvent ev;
  ev.worker = worker;
  if (!c.said_bye) {
    // Dropped without a word: the host is gone (kill -9, power, network)
    // — indistinguishable from preemption, so treat it as one.
    ev.kind = core::WorkerEvent::Kind::preempted;
    ev.status = -1;
    return ev;
  }
  ev.status = c.bye_status;
  ev.kind = c.bye_status == 0   ? core::WorkerEvent::Kind::exited
            : c.bye_status == 4 ? core::WorkerEvent::Kind::preempted
                                : core::WorkerEvent::Kind::died;
  return ev;
}

std::optional<core::WorkerEvent> TcpTransport::wait_any(long timeout_ms) {
  for (;;) {
    // Drain buffered frames before reaping, so a worker that sent
    // DONE + report + BYE and closed yields the lease_done first.
    for (std::size_t w = 0; w < conns_.size(); ++w) {
      Conn& c = conns_[w];
      if (!c.alive) continue;
      std::string frame;
      while (c.frames.pop(&frame)) {
        std::optional<core::WorkerEvent> ev = handle_frame(w, frame);
        if (ev) return ev;
      }
      if (c.saw_eof) return reap(w);
    }

    std::vector<pollfd> fds;
    std::vector<std::size_t> owners;
    for (std::size_t w = 0; w < conns_.size(); ++w) {
      Conn& c = conns_[w];
      if (!c.alive || c.saw_eof) continue;
      fds.push_back({c.fd, POLLIN, 0});
      owners.push_back(w);
    }
    if (fds.empty())
      throw OrchestratorError("wait_any: no live workers to wait on");
    int ready = ::poll(fds.data(), fds.size(),
                       timeout_ms < 0 ? -1 : static_cast<int>(timeout_ms));
    if (ready < 0) {
      if (errno == EINTR) continue;
      sys_fail("poll");
    }
    if (ready == 0) return std::nullopt;  // the deadman's polling edge
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      Conn& c = conns_[owners[i]];
      char buf[1 << 16];
      ssize_t n = ::read(c.fd, buf, sizeof buf);
      if (n > 0)
        c.frames.feed(buf, static_cast<std::size_t>(n));
      else if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN))
        c.saw_eof = true;
    }
  }
}

void TcpTransport::shutdown(std::size_t worker) {
  if (worker >= conns_.size())
    throw OrchestratorError("shutdown: unknown worker " +
                            std::to_string(worker));
  Conn& c = conns_[worker];
  if (!c.alive) return;
  // The socket stays open: BYE (or the close) still has to arrive.
  send_frame(c.fd, core::format_exit());
}

void TcpTransport::kill(std::size_t worker) {
  if (worker >= conns_.size())
    throw OrchestratorError("kill: unknown worker " +
                            std::to_string(worker));
  Conn& c = conns_[worker];
  if (!c.alive) return;
  // Closing the socket is all the reach we have across machines. The
  // worker behind it sees EOF and exits; a wedged one is the remote
  // host's problem — its lease is already re-leased here.
  if (c.fd >= 0) ::close(c.fd);
  c.fd = -1;
  c.alive = false;
}

}  // namespace ep::net
