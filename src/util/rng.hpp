// Deterministic RNG used everywhere randomness is needed (fuzz baseline,
// sampling campaigns). Campaign runs must be reproducible given a seed —
// both for the test suite's exact-count assertions and because the paper's
// methodology is explicitly deterministic (its advantage over penetration
// testing).
//
// Thread-confinement rule: there is deliberately no process-global RNG in
// this codebase. Every engine that needs randomness owns a seeded Rng
// instance (per campaign, per baseline run), and an instance must never
// be shared across threads — the parallel executor keeps all sampling in
// the single-threaded Planner, so worker threads draw no random numbers
// at all. Use fork() to derive an independent, deterministic stream when
// a sub-task needs its own generator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ep {

/// SplitMix64: tiny, fast, seedable, platform-stable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  double unit() {  // [0,1)
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return unit() < p; }

  /// Random byte string of length n (printable and non-printable mix),
  /// mimicking the Fuzz paper's random character streams.
  std::string bytes(std::size_t n) {
    std::string s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      s.push_back(static_cast<char>(between(1, 255)));
    return s;
  }

  /// Random printable string of length n.
  std::string printable(std::size_t n) {
    std::string s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      s.push_back(static_cast<char>(between(0x20, 0x7e)));
    return s;
  }

  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[below(v.size())];
  }

  /// Derive an independent, deterministic child stream (seeded from this
  /// stream's next output). Hand the child to a sub-task instead of
  /// sharing `this` across threads.
  Rng fork() { return Rng(next_u64()); }

 private:
  std::uint64_t state_;
};

}  // namespace ep
