// Small string utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ep {

/// Split on a single character; empty fields are kept ("a::b" -> a,"",b).
std::vector<std::string> split(std::string_view s, char sep);

/// Split, dropping empty fields ("/a//b/" with '/' -> a,b).
std::vector<std::string> split_nonempty(std::string_view s, char sep);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);
bool contains(std::string_view s, std::string_view needle);

std::string to_lower(std::string_view s);

/// Replace every occurrence of `from` with `to`.
std::string replace_all(std::string s, std::string_view from,
                        std::string_view to);

std::string trim(std::string_view s);

/// "57.0%"-style percent formatting used by the table benches.
std::string percent(double numerator, double denominator, int decimals = 1);

/// Repeat a string n times.
std::string repeat(std::string_view s, std::size_t n);

/// Escape for embedding inside a JSON string literal (quotes, backslash,
/// control characters).
std::string json_escape(const std::string& s);

/// `s` as a quoted JSON string: json_quote("a\"b") -> "\"a\\\"b\"".
std::string json_quote(const std::string& s);

}  // namespace ep
