// Minimal strict JSON parser for the engine's wire formats (plan and
// shard-report files, docs/WIRE_FORMAT.md).
//
// Parsing only — serialization stays with the types that own the data
// (InjectionPlan::to_json, ShardReport::to_json), which emit canonical
// output directly. The parser is strict where the wire format needs
// validation to be trustworthy: a single top-level value with no trailing
// garbage, no duplicate object keys, a bounded nesting depth, and every
// error reported with line/column context so a malformed shard file names
// the byte that broke it.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ep {

/// Malformed JSON text or a type-mismatched access. `what()` carries the
/// position ("line 3, column 17: ...") when the error came from parsing.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& msg)
      : std::runtime_error(msg), line_(0), column_(0) {}
  JsonError(const std::string& msg, std::size_t line, std::size_t column)
      : std::runtime_error("line " + std::to_string(line) + ", column " +
                           std::to_string(column) + ": " + msg),
        line_(line),
        column_(column) {}

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t column() const { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// One parsed JSON value. Objects keep their members in document order
/// (the wire-format docs show canonical serializer output, and order-
/// preserving members make "what did the file actually say" debuggable).
class JsonValue {
 public:
  enum class Type { null, boolean, number, string, array, object };

  using Members = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;  // null

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] std::string_view type_name() const;

  [[nodiscard]] bool is_null() const { return type_ == Type::null; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::boolean; }
  [[nodiscard]] bool is_number() const { return type_ == Type::number; }
  [[nodiscard]] bool is_string() const { return type_ == Type::string; }
  [[nodiscard]] bool is_array() const { return type_ == Type::array; }
  [[nodiscard]] bool is_object() const { return type_ == Type::object; }

  /// Typed accessors throw JsonError naming the actual type on mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  /// The number as an integer; throws if it has a fractional part or does
  /// not fit (ids, counts, and indices are integral on the wire).
  [[nodiscard]] long long as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;  // array
  [[nodiscard]] const Members& members() const;               // object

  /// Object member lookup: nullptr when absent (or when not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Object member lookup that throws JsonError naming the missing key.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

  // --- construction (used by the parser; handy for tests) -----------------
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double n);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(Members members);

 private:
  Type type_ = Type::null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  Members members_;
};

/// Parse exactly one JSON document. Throws JsonError (with line/column)
/// on malformed input, trailing garbage, duplicate object keys, or
/// nesting deeper than an internal sanity bound.
JsonValue json_parse(std::string_view text);

}  // namespace ep
