// SysResult<T>: expected-style result for simulated syscalls.
//
// C++20 has no std::expected, so we carry a small dedicated type. Syscall
// failure (ENOENT, EACCES, ...) is an ordinary outcome in this domain —
// target programs branch on it — so it is modelled as a value, not an
// exception. Programming errors (accessing value() of a failed result)
// throw, per the Core Guidelines split between recoverable errors and
// precondition violations.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

#include "util/errno.hpp"

namespace ep {

class BadResultAccess : public std::logic_error {
 public:
  explicit BadResultAccess(Err e)
      : std::logic_error("SysResult accessed with error: " +
                         std::string(err_name(e))) {}
};

template <typename T>
class SysResult {
 public:
  SysResult(T value) : state_(std::move(value)) {}  // NOLINT: implicit by design
  SysResult(Err e) : state_(e) {}                   // NOLINT: implicit by design

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] Err error() const {
    return ok() ? Err::ok : std::get<Err>(state_);
  }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw BadResultAccess(std::get<Err>(state_));
    return std::get<T>(state_);
  }
  [[nodiscard]] T& value() & {
    if (!ok()) throw BadResultAccess(std::get<Err>(state_));
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) throw BadResultAccess(std::get<Err>(state_));
    return std::get<T>(std::move(state_));
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  std::variant<T, Err> state_;
};

/// Tag for syscalls that return no payload (chmod, unlink, ...).
struct Unit {
  friend bool operator==(Unit, Unit) { return true; }
};

using SysStatus = SysResult<Unit>;

inline SysStatus ok_status() { return SysStatus{Unit{}}; }

}  // namespace ep
