#include "util/json.hpp"

#include <cerrno>
#include <cstdlib>

namespace ep {

namespace {

/// Deep enough for any real plan/report file, shallow enough that a
/// pathological input cannot exhaust the parser's stack.
constexpr int kMaxDepth = 128;

}  // namespace

std::string_view JsonValue::type_name() const {
  switch (type_) {
    case Type::null: return "null";
    case Type::boolean: return "boolean";
    case Type::number: return "number";
    case Type::string: return "string";
    case Type::array: return "array";
    case Type::object: return "object";
  }
  return "?";
}

bool JsonValue::as_bool() const {
  if (type_ != Type::boolean)
    throw JsonError("expected boolean, got " + std::string(type_name()));
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::number)
    throw JsonError("expected number, got " + std::string(type_name()));
  return number_;
}

long long JsonValue::as_int() const {
  double n = as_number();
  // Range-check before the cast: double -> long long outside the
  // representable range is UB, and the number came from untrusted input.
  if (n < -9223372036854775808.0 || n >= 9223372036854775808.0)
    throw JsonError("integer out of range");
  auto i = static_cast<long long>(n);
  if (static_cast<double>(i) != n)
    throw JsonError("expected integer, got non-integral number");
  return i;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::string)
    throw JsonError("expected string, got " + std::string(type_name()));
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::array)
    throw JsonError("expected array, got " + std::string(type_name()));
  return items_;
}

const JsonValue::Members& JsonValue::members() const {
  if (type_ != Type::object)
    throw JsonError("expected object, got " + std::string(type_name()));
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::object) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  if (type_ != Type::object)
    throw JsonError("expected object with key '" + std::string(key) +
                    "', got " + std::string(type_name()));
  if (const JsonValue* v = find(key)) return *v;
  throw JsonError("missing key '" + std::string(key) + "'");
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.type_ = Type::boolean;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.type_ = Type::number;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.type_ = Type::string;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::array;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(Members members) {
  JsonValue v;
  v.type_ = Type::object;
  v.members_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after JSON document");
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& msg) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError(msg, line, col);
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return;
      ++pos_;
    }
  }

  void expect(char c, const char* what) {
    if (eof() || peek() != c)
      fail(std::string("expected ") + what + " ('" + c + "')");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::make_null();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{', "object");
    JsonValue::Members members;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      for (const auto& [k, v] : members)
        if (k == key) fail("duplicate object key '" + key + "'");
      skip_ws();
      expect(':', "':' after object key");
      skip_ws();
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}', "'}' or ',' in object");
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue parse_array(int depth) {
    expect('[', "array");
    std::vector<JsonValue> items;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      skip_ws();
      items.push_back(parse_value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']', "']' or ',' in array");
      return JsonValue::make_array(std::move(items));
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) fail("unterminated \\u escape");
      char c = peek();
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
      ++pos_;
    }
    return v;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"', "string");
    std::string out;
    for (;;) {
      // Bulk-copy the run of plain characters up to the next quote,
      // escape, or control byte: wire files are mostly paths and
      // descriptions, and appending them per character dominated the
      // parse profile.
      std::size_t run = pos_;
      while (run < text_.size()) {
        unsigned char c = static_cast<unsigned char>(text_[run]);
        if (c == '"' || c == '\\' || c < 0x20) break;
        ++run;
      }
      if (run > pos_) {
        out.append(text_.data() + pos_, run - pos_);
        pos_ = run;
      }
      if (eof()) fail("unterminated string");
      char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) fail("unterminated escape sequence");
      char e = peek();
      ++pos_;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // A high surrogate is only half a code point: the very next
            // characters must be the `\u` of its low half. Anything else
            // — the closing quote, literal text, another escape, or end
            // of input — leaves it unpaired.
            if (!consume_literal("\\u"))
              fail("unpaired high surrogate (\\u low-surrogate escape "
                   "must follow)");
            unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF)
              fail("invalid low surrogate in \\u pair");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate (no preceding high surrogate)");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape sequence");
      }
    }
  }

  JsonValue parse_number() {
    std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || peek() < '0' || peek() > '9') fail("invalid number");
    bool leading_zero = peek() == '0';
    while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    if (leading_zero && pos_ - start > (text_[start] == '-' ? 2u : 1u))
      fail("leading zero in number");
    bool integral = eof() || (peek() != '.' && peek() != 'e' && peek() != 'E');
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9')
        fail("digit expected after decimal point");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9')
        fail("digit expected in exponent");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    // Fast path: wire files are overwhelmingly small integers (ids,
    // counts, lines); 15 digits always fit a double exactly, so no
    // strtod round trip (which needs a heap slice for NUL termination).
    std::size_t digits_at = start + (text_[start] == '-' ? 1 : 0);
    if (integral && pos_ - digits_at <= 15) {
      long long v = 0;
      for (std::size_t i = digits_at; i < pos_; ++i)
        v = v * 10 + (text_[i] - '0');
      return JsonValue::make_number(
          text_[start] == '-' ? -static_cast<double>(v)
                              : static_cast<double>(v));
    }
    std::string slice(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    double v = std::strtod(slice.c_str(), &end);
    if (end != slice.c_str() + slice.size() || errno == ERANGE)
      fail("number out of range");
    return JsonValue::make_number(v);
  }
};

}  // namespace

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace ep
