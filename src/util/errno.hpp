// Error codes for the simulated syscall layer.
//
// These mirror the POSIX errno values the paper's target programs would
// have seen on a real UNIX; the names are kept close to errno(3) so the
// simulated applications read like the originals.
#pragma once

#include <string_view>

namespace ep {

enum class Err {
  ok = 0,
  noent,        // no such file or directory
  acces,        // permission denied
  exist,        // file exists (O_EXCL)
  notdir,       // a path component is not a directory
  isdir,        // operation not valid on a directory
  loop,         // too many symbolic links
  nametoolong,  // path or component too long
  perm,         // operation not permitted (ownership / privilege)
  badf,         // bad file descriptor
  inval,        // invalid argument
  noexec,       // not an executable / no registered image
  nosys,        // unsupported operation
  srch,         // no such process
  conn,         // connection refused / service unavailable
  proto,        // protocol error
  again,        // resource temporarily unavailable
  io,           // input/output error
  xdev,         // cross-device link
  notempty,     // directory not empty
};

/// errno-style short name, e.g. Err::acces -> "EACCES".
std::string_view err_name(Err e);

/// Human-readable message, e.g. Err::acces -> "permission denied".
std::string_view err_message(Err e);

}  // namespace ep
