#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace ep {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_nonempty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& part : split(s, sep))
    if (!part.empty()) out.push_back(std::move(part));
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string replace_all(std::string s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string percent(double numerator, double denominator, int decimals) {
  if (denominator == 0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals,
                100.0 * numerator / denominator);
  return buf;
}

std::string repeat(std::string_view s, std::size_t n) {
  std::string out;
  out.reserve(s.size() * n);
  for (std::size_t i = 0; i < n; ++i) out += s;
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_quote(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

}  // namespace ep
