#include "util/table.hpp"

#include <algorithm>

namespace ep {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto rule = [&] {
    std::string s = "+";
    for (auto w : width) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      s += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

}  // namespace ep
