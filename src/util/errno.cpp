#include "util/errno.hpp"

namespace ep {

std::string_view err_name(Err e) {
  switch (e) {
    case Err::ok: return "OK";
    case Err::noent: return "ENOENT";
    case Err::acces: return "EACCES";
    case Err::exist: return "EEXIST";
    case Err::notdir: return "ENOTDIR";
    case Err::isdir: return "EISDIR";
    case Err::loop: return "ELOOP";
    case Err::nametoolong: return "ENAMETOOLONG";
    case Err::perm: return "EPERM";
    case Err::badf: return "EBADF";
    case Err::inval: return "EINVAL";
    case Err::noexec: return "ENOEXEC";
    case Err::nosys: return "ENOSYS";
    case Err::srch: return "ESRCH";
    case Err::conn: return "ECONNREFUSED";
    case Err::proto: return "EPROTO";
    case Err::again: return "EAGAIN";
    case Err::io: return "EIO";
    case Err::xdev: return "EXDEV";
    case Err::notempty: return "ENOTEMPTY";
  }
  return "E?";
}

std::string_view err_message(Err e) {
  switch (e) {
    case Err::ok: return "success";
    case Err::noent: return "no such file or directory";
    case Err::acces: return "permission denied";
    case Err::exist: return "file exists";
    case Err::notdir: return "not a directory";
    case Err::isdir: return "is a directory";
    case Err::loop: return "too many levels of symbolic links";
    case Err::nametoolong: return "file name too long";
    case Err::perm: return "operation not permitted";
    case Err::badf: return "bad file descriptor";
    case Err::inval: return "invalid argument";
    case Err::noexec: return "exec format error";
    case Err::nosys: return "function not implemented";
    case Err::srch: return "no such process";
    case Err::conn: return "connection refused";
    case Err::proto: return "protocol error";
    case Err::again: return "resource temporarily unavailable";
    case Err::io: return "input/output error";
    case Err::xdev: return "cross-device link";
    case Err::notempty: return "directory not empty";
  }
  return "unknown error";
}

}  // namespace ep
