// Plain-text table renderer used by the bench harness to print the paper's
// tables next to our measured values.
#pragma once

#include <string>
#include <vector>

namespace ep {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render with column alignment and +---+ rules.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ep
