#include "apps/turnin.hpp"

#include "apps/fixed_buffer.hpp"
#include "apps/spec_env.hpp"
#include "util/strings.hpp"

namespace ep::apps {

using os::OpenFlag;
using os::OpenFlags;
using os::Site;

namespace {

// The 8 interaction points. Lines are stable pseudo-line-numbers in
// "turnin.c"; tags are the public identifiers.
const Site kArgCourse{"turnin.c", 80, kTurninArgCourse};
const Site kOpenConfig{"turnin.c", 102, kTurninOpenConfig};
const Site kOpenProjlist{"turnin.c", 131, kTurninOpenProjlist};
const Site kGetenvPath{"turnin.c", 150, kTurninGetenvPath};
const Site kArgFile{"turnin.c", 210, kTurninArgFile};
const Site kOpenSource{"turnin.c", 240, kTurninOpenSource};
const Site kCreateDest{"turnin.c", 260, kTurninCreateDest};
const Site kExecTar{"turnin.c", 300, kTurninExecTar};
const Site kSay{"turnin.c", 320, "turnin-status"};

bool all_course_chars(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s)
    if (!std::isalnum(static_cast<unsigned char>(c))) return false;
  return true;
}

/// The validation bug: leading "./" and "../" prefixes are stripped before
/// the name is checked, but callers keep using the original.
std::string strip_path_prefixes(std::string name) {
  for (;;) {
    if (ep::starts_with(name, "./"))
      name.erase(0, 2);
    else if (ep::starts_with(name, "../"))
      name.erase(0, 3);
    else
      break;
  }
  return name;
}

int turnin_impl(os::Kernel& k, os::Pid pid, bool hardened) {
  const os::Process& p = k.proc(pid);

  // Flag parsing walks the raw argv for dispatch syntax (-c/-l/-p); the
  // *values* — course name, file names — are fetched through the
  // interaction layer, because those are what an invoker perturbs.
  std::size_t course_idx = 0;
  std::size_t proj_idx = 0;
  bool list_mode = false;
  std::size_t first_file_idx = 0;
  for (std::size_t i = 1; i < p.args.size(); ++i) {
    if (p.args[i] == "-c" && i + 1 < p.args.size()) {
      course_idx = ++i;
    } else if (p.args[i] == "-l") {
      list_mode = true;
    } else if (p.args[i] == "-p" && i + 1 < p.args.size()) {
      proj_idx = ++i;
      first_file_idx = i + 1;
    }
  }
  if (course_idx == 0 || (!list_mode && proj_idx == 0)) {
    k.output(kSay, pid, "usage: turnin -c course [-l | -p project files...]");
    return 1;
  }

  // --- interaction 1: course name (user input) -----------------------------
  std::string course_raw = k.arg(kArgCourse, pid, course_idx);
  FixedBuffer course_buf(k, pid, kArgCourse, 64);
  if (!course_buf.copy_checked(course_raw)) {
    k.output(kSay, pid, "turnin: course name too long");
    return 2;
  }
  const std::string course = course_buf.str();
  if (!all_course_chars(course)) {
    k.output(kSay, pid, "turnin: illegal course name");
    return 2;
  }

  // --- interaction 2: configuration file (file system) ---------------------
  OpenFlags cfg_flags = OpenFlag::rd;
  if (hardened) cfg_flags = cfg_flags | OpenFlag::nofollow;
  auto cfd = k.open(kOpenConfig, pid, kTurninConfigPath, cfg_flags);
  if (!cfd.ok()) {
    k.output(kSay, pid, "turnin: cannot open configuration file");
    return 2;
  }
  std::string submitbase;
  for (;;) {
    auto line = k.read_line(kOpenConfig, pid, cfd.value());
    if (!line.ok()) break;
    auto parts = ep::split(line.value(), ':');
    if (parts.size() == 2 && parts[0] == course) submitbase = parts[1];
  }
  (void)k.close(pid, cfd.value());
  if (submitbase.empty()) {
    k.output(kSay, pid, "turnin: unknown course " + course);
    return 3;
  }

  // --- interaction 3: Projlist (the paper's first exploited flaw) ----------
  const std::string pcFile = submitbase + "/Projlist";
  if (hardened) {
    // Ask whether the *invoker* may read the list before reading it with
    // root privilege (access(2) checks the real uid).
    if (!k.access(kOpenProjlist, pid, pcFile, os::Perm::read).ok()) {
      k.output(kSay, pid, "can not find project list file");
      return 9;
    }
  }
  OpenFlags pl_flags = OpenFlag::rd;
  if (hardened) pl_flags = pl_flags | OpenFlag::nofollow;
  auto pfd = k.open(kOpenProjlist, pid, pcFile, pl_flags);
  if (!pfd.ok()) {
    k.output(kSay, pid, "can not find project list file");
    return 9;
  }

  if (list_mode) {
    k.output(kSay, pid, "Project list for " + course + ":");
    for (;;) {
      auto line = k.read_line(kOpenProjlist, pid, pfd.value());
      if (!line.ok()) break;
      k.output(kOpenProjlist, pid, line.value());
    }
    (void)k.close(pid, pfd.value());
    return 0;
  }

  std::vector<std::string> projects;
  for (;;) {
    auto line = k.read_line(kOpenProjlist, pid, pfd.value());
    if (!line.ok()) break;
    if (!line.value().empty()) projects.push_back(line.value());
  }
  (void)k.close(pid, pfd.value());
  const std::string proj = p.args[proj_idx];
  bool known = false;
  for (const auto& pr : projects) known = known || pr == proj;
  if (!known) {
    k.output(kSay, pid, "turnin: unknown project " + proj);
    return 4;
  }

  // --- interaction 4: $PATH (environment variable) -------------------------
  // turnin never PATH-searches (it pins /bin/tar by descriptor below), but
  // it still sanitizes the variable it hands to children.
  std::string path = k.getenv(kGetenvPath, pid, "PATH").value_or("");
  bool path_ok = !path.empty();
  for (const auto& comp : ep::split_nonempty(path, ':'))
    if (comp != "/bin" && comp != "/usr/bin" && comp != "/usr/local/bin")
      path_ok = false;
  if (!path_ok) path = "/bin:/usr/bin";
  k.proc(pid).env["PATH"] = path;

  // --- interaction 5: the tar binary (checked, then pinned by fd) ----------
  auto tst = k.stat(kExecTar, pid, "/bin/tar");
  auto tar_ok = [&](const os::StatInfo& s) {
    return s.type == os::FileType::regular && s.uid == os::kRootUid &&
           (s.mode & 0022) == 0 && (s.mode & 0111) != 0 && s.trusted;
  };
  if (!tst.ok() || !tar_ok(tst.value())) {
    k.output(kSay, pid, "turnin: tar binary looks unsafe, aborting");
    return 5;
  }
  auto tfd = k.open(kExecTar, pid, "/bin/tar", OpenFlag::rd);
  if (!tfd.ok()) {
    k.output(kSay, pid, "turnin: cannot open tar binary");
    return 5;
  }
  // Re-verify through the descriptor: nothing that happens to the *path*
  // from here on can swap the binary underneath us.
  auto tst2 = k.fstat(pid, tfd.value());
  if (!tst2.ok() || !tar_ok(tst2.value())) {
    k.output(kSay, pid, "turnin: tar binary changed, aborting");
    (void)k.close(pid, tfd.value());
    return 5;
  }

  // --- interactions 6-8: each submitted file -------------------------------
  int submitted = 0;
  for (std::size_t i = first_file_idx; i < p.args.size(); ++i) {
    std::string name = k.arg(kArgFile, pid, i);
    FixedBuffer name_buf(k, pid, kArgFile, 256);
    if (!name_buf.copy_checked(name)) {
      k.output(kSay, pid, "turnin: file name too long");
      return 6;
    }
    std::string stripped = strip_path_prefixes(name);
    if (hardened && (ep::contains(name, "..") || ep::contains(name, "/"))) {
      k.output(kSay, pid, "turnin: illegal file name " + name);
      return 6;
    }
    if (stripped.empty() || ep::contains(stripped, "/")) {
      k.output(kSay, pid, "turnin: illegal file name " + name);
      return 6;
    }

    // Read the student's file — but only if the *invoker* could.
    if (!k.access(kOpenSource, pid, stripped, os::Perm::read).ok()) {
      k.output(kSay, pid, "turnin: you cannot read " + stripped);
      return 7;
    }
    auto sfd = k.open(kOpenSource, pid, stripped, OpenFlag::rd);
    if (!sfd.ok()) {
      k.output(kSay, pid, "turnin: cannot open " + stripped);
      return 7;
    }
    auto content = k.read(kOpenSource, pid, sfd.value());
    (void)k.close(pid, sfd.value());
    if (!content.ok()) {
      k.output(kSay, pid, "turnin: read error on " + stripped);
      return 7;
    }

    // THE BUG: destination uses the original (unstripped) name.
    const std::string dest =
        submitbase + "/" + (hardened ? stripped : name);
    OpenFlags dflags = OpenFlag::wr | OpenFlag::creat | OpenFlag::trunc;
    if (hardened) dflags = OpenFlag::wr | OpenFlag::creat | OpenFlag::excl;
    auto dfd = k.open(kCreateDest, pid, dest, dflags, 0600);
    if (!dfd.ok()) {
      k.output(kSay, pid, "turnin: cannot store " + name);
      return 8;
    }
    if (!k.write(kCreateDest, pid, dfd.value(), content.value()).ok()) {
      k.output(kSay, pid, "turnin: write error storing " + name);
      (void)k.close(pid, dfd.value());
      return 8;
    }
    (void)k.close(pid, dfd.value());
    ++submitted;
  }

  // execve(acTar, nargv, environ) — via the pinned descriptor.
  auto rc = k.fexec(kExecTar, pid, tfd.value(),
                    {"tar", "cf", submitbase + "/submission.tar"});
  (void)k.close(pid, tfd.value());
  if (!rc.ok() || rc.value() != 0) {
    k.output(kSay, pid, "turnin: tar failed");
    return 10;
  }
  k.output(kSay, pid,
           "turnin: submitted " + std::to_string(submitted) + " file(s) to " +
               course + "/" + proj);
  return 0;
}

}  // namespace

int turnin_main(os::Kernel& k, os::Pid pid) {
  return turnin_impl(k, pid, /*hardened=*/false);
}

int turnin_hardened_main(os::Kernel& k, os::Pid pid) {
  return turnin_impl(k, pid, /*hardened=*/true);
}

namespace {

core::ScenarioSpec turnin_spec_impl(bool hardened) {
  namespace sb = core::spec_builders;
  core::ScenarioSpec s;
  s.name = hardened ? "turnin-hardened" : "turnin";
  s.description =
      "Purdue turnin (Section 4.1): 8 interaction points, 41 perturbations";
  s.trace_unit_filter = "turnin.c";
  s.users.push_back({200, "ta", 200});
  sb::add_alice(s);
  // Both variant images are registered; which one /usr/bin/turnin runs is
  // the spec's choice.
  s.images = {"turnin", "turnin-hardened"};
  sb::add_payload_images(s);

  s.world.push_back(sb::file_op(
      kTurninConfigPath, "cs390:/home/ta/submit\ncs240:/home/ta/submit\n"));

  s.world.push_back(sb::dir_op("/home/ta", 200, 200, 0755));
  s.world.push_back(sb::dir_op("/home/ta/submit", 200, 200, 0755));
  s.world.push_back(sb::file_op("/home/ta/submit/Projlist",
                                "proj1\nproj2\nproj3\n", 200, 200, 0644));
  s.world.push_back(
      sb::file_op("/home/ta/.login", "# ta login script\n", 200, 200, 0644));

  s.world.push_back(sb::dir_op("/home/alice", 1000, 1000, 0755));
  s.world.push_back(sb::file_op("/home/alice/hw1.c",
                                "int main() { return 42; }\n", 1000, 1000,
                                0644));
  s.world.push_back(
      sb::file_op("/home/alice/.login",
                  "PATH=/home/alice/bin:$PATH  # student login file\n", 1000,
                  1000, 0644));

  // The attacker's staging area (exists in the benign world; scenario
  // hints point perturbations at it).
  sb::add_attacker(s, /*with_evil=*/true);
  s.world.push_back(sb::file_op("/tmp/attacker/evil-turnin.cf",
                                "cs390:/tmp/attacker\n", 666, 666, 0644));
  s.world.push_back(
      sb::file_op("/tmp/attacker/Projlist", "proj1\n", 666, 666, 0644));

  s.world.push_back(sb::program_op("/bin/tar", "tar"));
  s.world.push_back(sb::program_op("/usr/bin/turnin",
                                   hardened ? "turnin-hardened" : "turnin",
                                   os::kRootUid, os::kRootGid,
                                   0755 | os::kSetUidBit));

  // The test case: a student lists the projects, then submits one file.
  // Only the last step's exit code is the scenario's.
  s.run.push_back({"/usr/bin/turnin",
                   {"turnin", "-c", "cs390", "-l"},
                   1000,
                   1000,
                   {},
                   "/home/alice"});
  s.run.push_back({"/usr/bin/turnin",
                   {"turnin", "-c", "cs390", "-p", "proj1", "hw1.c"},
                   1000,
                   1000,
                   {},
                   "/home/alice"});

  s.policy.write_sanction_roots = {kTurninSubmitDir};
  s.policy.secret_files = {"/etc/shadow"};

  s.hints.content_payloads[kTurninOpenConfig] = "cs390:/tmp/attacker\n";
  s.hints.link_victims[kTurninOpenConfig] = "/tmp/attacker/evil-turnin.cf";

  // The per-site fault plans: 41 perturbations over 8 interaction points.
  auto fs_basic = [](std::initializer_list<const char*> names,
                     std::map<std::string, std::string> na = {}) {
    core::SiteSpec spec;
    for (const char* n : names) spec.faults.emplace_back(n);
    spec.not_applicable = std::move(na);
    return spec;
  };

  s.sites.emplace_back(
      kTurninOpenConfig,
      fs_basic(
          {"file-existence", "file-ownership", "file-permission",
           "symbolic-link", "content-invariance"},
          {{"name-invariance", "covered by file-existence for a fixed path"},
           {"working-directory", "config path is absolute"}}));
  s.sites.emplace_back(
      kTurninOpenProjlist,
      fs_basic({"file-existence", "file-ownership", "file-permission",
                "symbolic-link", "content-invariance", "name-invariance"},
               {{"working-directory", "Projlist path is absolute"}}));
  s.sites.emplace_back(
      kTurninGetenvPath,
      fs_basic({"path-change-length", "path-rearrange-order",
                "path-insert-untrusted", "path-use-incorrect",
                "path-use-recursive"}));
  s.sites.emplace_back(
      kTurninArgCourse,
      fs_basic({"change-length", "use-relative-path", "use-absolute-path",
                "insert-dotdot", "insert-slash"}));
  s.sites.emplace_back(
      kTurninArgFile,
      fs_basic({"change-length", "use-relative-path", "use-absolute-path",
                "insert-dotdot", "insert-slash"}));
  s.sites.emplace_back(
      kTurninOpenSource,
      fs_basic({"file-existence", "file-ownership", "file-permission",
                "symbolic-link", "content-invariance"},
               {{"name-invariance", "equivalent to file-existence here"},
                {"working-directory",
                 "source resolution is the invoker's own responsibility"}}));
  s.sites.emplace_back(
      kTurninCreateDest,
      fs_basic(
          {"file-existence", "file-ownership", "file-permission",
           "symbolic-link", "working-directory"},
          {{"content-invariance",
            "this is supposed to be the first time the file is encountered"},
           {"name-invariance",
            "this is supposed to be the first time the file is "
            "encountered"}}));
  s.sites.emplace_back(
      kTurninExecTar,
      fs_basic(
          {"file-existence", "file-ownership", "file-permission",
           "symbolic-link", "content-invariance"},
          {{"name-invariance",
            "binary is pinned by descriptor after the check"},
           {"working-directory", "binary path is absolute"}}));
  return s;
}

}  // namespace

core::ScenarioSpec turnin_spec(bool hardened) {
  return turnin_spec_impl(hardened);
}

core::Scenario turnin_scenario() {
  return core::compile_spec(turnin_spec_impl(false), spec_environment());
}

core::Scenario turnin_hardened_scenario() {
  return core::compile_spec(turnin_spec_impl(true), spec_environment());
}

}  // namespace ep::apps
