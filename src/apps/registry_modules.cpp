#include "apps/registry_modules.hpp"

#include "apps/spec_env.hpp"
#include "apps/fixed_buffer.hpp"
#include "apps/payloads.hpp"
#include "os/world.hpp"
#include "util/strings.hpp"

namespace ep::apps {

using os::OpenFlag;
using os::Site;

namespace {

constexpr os::Uid kAdmin = 500;
constexpr os::Uid kMallory = 666;

// Key paths (stand-ins for the withheld real names).
constexpr const char* kKeyFontCleanup = "HKLM/Software/FontCleanupList";
constexpr const char* kKeyLogonProfile = "HKLM/Software/LogonProfileDir";
constexpr const char* kKeyScreensaver = "HKLM/Software/ScreensaverPath";
constexpr const char* kKeyHelpViewer = "HKLM/Software/HelpViewerFile";
constexpr const char* kKeyWallpaper = "HKLM/Software/WallpaperFile";
constexpr const char* kKeyUpdateLog = "HKLM/Software/UpdateLogPath";
constexpr const char* kKeySpoolDir = "HKLM/Software/SpoolDirectory";
constexpr const char* kKeyAeDebug = "HKLM/Software/AeDebugCommand";
constexpr const char* kKeyTempClean = "HKLM/Software/TempCleanupDir";

// --- the nine module images ---------------------------------------------------

// Each module follows the pattern the paper describes: read a key every
// user may write, then act on the value with SYSTEM privilege.

int fontcleanup_main(os::Kernel& k, os::Pid pid, reg::Registry& r) {
  const Site kRead{"fontcleanup.c", 10, "regread-fontlist"};
  const Site kDel{"fontcleanup.c", 20, "unlink-fontfile"};
  const Site kSay{"fontcleanup.c", 30, "fontcleanup-status"};
  auto v = r.read_value(k, kRead, pid, kKeyFontCleanup);
  if (!v.ok() || v.value().empty()) {
    k.output(kSay, pid, "fontcleanup: nothing to clean");
    return 0;
  }
  // "a module in the system that invokes a function call to actually
  // delete this file" — no check that it still names a font.
  if (!k.unlink(kDel, pid, v.value()).ok()) {
    k.output(kSay, pid, "fontcleanup: cannot delete " + v.value());
    return 1;
  }
  k.output(kSay, pid, "fontcleanup: removed " + v.value());
  return 0;
}

int logonprofile_main(os::Kernel& k, os::Pid pid, reg::Registry& r) {
  const Site kRead{"logonprofile.c", 10, "regread-profiledir"};
  const Site kIni{"logonprofile.c", 20, "open-profile-ini"};
  const Site kExec{"logonprofile.c", 40, "exec-logonscript"};
  const Site kSay{"logonprofile.c", 50, "logonprofile-status"};
  auto dir = r.read_value(k, kRead, pid, kKeyLogonProfile);
  if (!dir.ok()) return 1;
  auto fd = k.open(kIni, pid, dir.value() + "/ntuser.ini", OpenFlag::rd);
  if (!fd.ok()) {
    k.output(kSay, pid, "logonprofile: no profile found");
    return 1;
  }
  auto content = k.read(kIni, pid, fd.value());
  (void)k.close(pid, fd.value());
  if (!content.ok()) return 1;
  std::string script;
  for (const auto& line : ep::split(content.value(), '\n'))
    if (ep::starts_with(line, "logonscript="))
      script = line.substr(std::string("logonscript=").size());
  if (script.empty()) {
    k.output(kSay, pid, "logonprofile: profile has no logon script");
    return 1;
  }
  // "whenever a user logons, the logon module will go to the ...
  // directory, and grab a specified profile for you" — and run it.
  auto rc = k.exec(kExec, pid, script, {script});
  k.output(kSay, pid, "logonprofile: ran " + script);
  return rc.ok() ? rc.value() : 1;
}

int screensaver_main(os::Kernel& k, os::Pid pid, reg::Registry& r) {
  const Site kRead{"screensaver.c", 10, "regread-scrpath"};
  const Site kExec{"screensaver.c", 20, "exec-screensaver"};
  const Site kSay{"screensaver.c", 30, "screensaver-status"};
  auto v = r.read_value(k, kRead, pid, kKeyScreensaver);
  if (!v.ok() || v.value().empty()) return 1;
  auto rc = k.exec(kExec, pid, v.value(), {v.value()});
  if (!rc.ok()) {
    k.output(kSay, pid, "screensaver: cannot start " + v.value());
    return 1;
  }
  return 0;
}

int helpviewer_main(os::Kernel& k, os::Pid pid, reg::Registry& r) {
  const Site kRead{"helpviewer.c", 10, "regread-helpfile"};
  const Site kOpen{"helpviewer.c", 20, "open-helpfile"};
  const Site kSay{"helpviewer.c", 30, "helpviewer-status"};
  auto v = r.read_value(k, kRead, pid, kKeyHelpViewer);
  if (!v.ok()) return 1;
  auto fd = k.open(kOpen, pid, v.value(), OpenFlag::rd);
  if (!fd.ok()) {
    k.output(kSay, pid, "helpviewer: cannot open " + v.value());
    return 1;
  }
  auto content = k.read(kOpen, pid, fd.value());
  (void)k.close(pid, fd.value());
  if (!content.ok()) return 1;
  // The viewer displays whatever the key names.
  k.output(kOpen, pid, content.value());
  return 0;
}

int wallpaper_main(os::Kernel& k, os::Pid pid, reg::Registry& r) {
  const Site kRead{"wallpaper.c", 10, "regread-wallpaper"};
  const Site kOpen{"wallpaper.c", 20, "open-wallpaper"};
  const Site kSay{"wallpaper.c", 30, "wallpaper-status"};
  auto v = r.read_value(k, kRead, pid, kKeyWallpaper);
  if (!v.ok()) return 1;
  // Path copied into a fixed name buffer without a bound check.
  FixedBuffer pathbuf(k, pid, kRead, 256);
  pathbuf.copy_unchecked(v.value());
  auto fd = k.open(kOpen, pid, pathbuf.str(), OpenFlag::rd);
  if (!fd.ok()) {
    k.output(kSay, pid, "wallpaper: cannot load " + pathbuf.str());
    return 1;
  }
  (void)k.read(kOpen, pid, fd.value());
  (void)k.close(pid, fd.value());
  k.output(kSay, pid, "wallpaper: loaded " + pathbuf.str());
  return 0;
}

int updater_main(os::Kernel& k, os::Pid pid, reg::Registry& r) {
  const Site kRead{"updater.c", 10, "regread-logpath"};
  const Site kLog{"updater.c", 20, "append-updatelog"};
  const Site kSay{"updater.c", 30, "updater-status"};
  auto v = r.read_value(k, kRead, pid, kKeyUpdateLog);
  if (!v.ok()) return 1;
  auto fd = k.open(kLog, pid, v.value(),
                   OpenFlag::wr | OpenFlag::creat | OpenFlag::append, 0644);
  if (!fd.ok()) {
    k.output(kSay, pid, "updater: cannot log to " + v.value());
    return 1;
  }
  (void)k.write(kLog, pid, fd.value(), "update check: all components ok\n");
  (void)k.close(pid, fd.value());
  return 0;
}

int spooler_main(os::Kernel& k, os::Pid pid, reg::Registry& r) {
  const Site kRead{"spooler.c", 10, "regread-spooldir"};
  const Site kSpool{"spooler.c", 20, "create-spoolfile"};
  const Site kSay{"spooler.c", 30, "spooler-status"};
  auto v = r.read_value(k, kRead, pid, kKeySpoolDir);
  if (!v.ok()) return 1;
  auto fd = k.open(kSpool, pid, v.value() + "/spool001.tmp",
                   OpenFlag::wr | OpenFlag::creat | OpenFlag::trunc, 0600);
  if (!fd.ok()) {
    k.output(kSay, pid, "spooler: cannot spool under " + v.value());
    return 1;
  }
  (void)k.write(kSpool, pid, fd.value(), "spooled print job\n");
  (void)k.close(pid, fd.value());
  return 0;
}

int aedebug_main(os::Kernel& k, os::Pid pid, reg::Registry& r) {
  const Site kRead{"aedebug.c", 10, "regread-debugger"};
  const Site kExec{"aedebug.c", 20, "exec-debugger"};
  const Site kSay{"aedebug.c", 30, "aedebug-status"};
  auto v = r.read_value(k, kRead, pid, kKeyAeDebug);
  if (!v.ok() || v.value().empty()) return 1;
  // A process crashed; launch the configured post-mortem debugger.
  auto rc = k.exec(kExec, pid, v.value(), {v.value(), "-p", "1234"});
  if (!rc.ok()) {
    k.output(kSay, pid, "aedebug: cannot start debugger");
    return 1;
  }
  return 0;
}

int tempclean_main(os::Kernel& k, os::Pid pid, reg::Registry& r) {
  const Site kRead{"tempclean.c", 10, "regread-tempdir"};
  const Site kClean{"tempclean.c", 20, "unlink-tempfiles"};
  const Site kSay{"tempclean.c", 30, "tempclean-status"};
  auto v = r.read_value(k, kRead, pid, kKeyTempClean);
  if (!v.ok()) return 1;
  auto names = k.readdir(kClean, pid, v.value());
  if (!names.ok()) {
    k.output(kSay, pid, "tempclean: cannot list " + v.value());
    return 1;
  }
  int removed = 0;
  for (const auto& name : names.value())
    if (k.unlink(kClean, pid, v.value() + "/" + name).ok()) ++removed;
  k.output(kSay, pid,
           "tempclean: removed " + std::to_string(removed) + " file(s)");
  return 0;
}

}  // namespace

std::vector<NtModuleInfo> nt_modules() {
  return {
      {"fontcleanup", kKeyFontCleanup,
       "deletes the file the key names (the paper's font-file module)"},
      {"logonprofile", kKeyLogonProfile,
       "loads the logon profile from the key-named directory (the paper's "
       "logon module)"},
      {"screensaver", kKeyScreensaver, "executes the key-named binary"},
      {"helpviewer", kKeyHelpViewer, "displays the key-named file"},
      {"wallpaper", kKeyWallpaper,
       "copies the key value into a fixed buffer and loads the file"},
      {"updater", kKeyUpdateLog, "appends its log to the key-named path"},
      {"spooler", kKeySpoolDir, "creates spool files in the key-named dir"},
      {"aedebug", kKeyAeDebug,
       "runs the key-named post-mortem debugger on crashes"},
      {"tempclean", kKeyTempClean,
       "recursively deletes the key-named directory's entries"},
  };
}

std::vector<std::pair<std::string, os::AppImage>> nt_module_images() {
  using ModuleFn = int (*)(os::Kernel&, os::Pid, reg::Registry&);
  // The image looks the registry up through its own kernel (clone-safe;
  // see Kernel::attach_substrates).
  static constexpr std::pair<const char*, ModuleFn> kMods[] = {
      {"fontcleanup", fontcleanup_main},
      {"logonprofile", logonprofile_main},
      {"screensaver", screensaver_main},
      {"helpviewer", helpviewer_main},
      {"wallpaper", wallpaper_main},
      {"updater", updater_main},
      {"spooler", spooler_main},
      {"aedebug", aedebug_main},
      {"tempclean", tempclean_main},
  };
  std::vector<std::pair<std::string, os::AppImage>> out;
  for (const auto& [name, fn] : kMods)
    out.emplace_back(name, [fn](os::Kernel& kk, os::Pid p) {
      return fn(kk, p, *kk.registry());
    });
  return out;
}

int nt_benign_cmd_image(os::Kernel& k, os::Pid pid) {
  k.output(Site{"benign.c", 1, "benign-run"}, pid, "benign helper ran");
  return 0;
}

core::ScenarioSpec nt_module_spec(const std::string& module) {
  namespace sb = core::spec_builders;
  core::ScenarioSpec s;
  s.name = "nt-" + module;
  for (const auto& m : nt_modules())
    if (m.module == module) s.description = m.what;
  s.trace_unit_filter = module + ".c";
  s.standard_unix = false;  // NT-flavored tree, no /etc skeleton
  s.users.push_back({os::kRootUid, "SYSTEM", os::kRootGid});
  s.users.push_back({kAdmin, "administrator", kAdmin});
  for (const auto& m : nt_modules()) s.images.push_back(m.module);
  s.images.emplace_back("nt-benign-cmd");
  sb::add_payload_images(s);

  s.world.push_back(sb::dir_op("/winnt/system32/config"));
  s.world.push_back(sb::file_op(kNtSam,
                                "SAM-REGISTRY-HIVE administrator:0x1f4:"
                                "SECRET-NT-PASSWORD-HASHES\n",
                                os::kRootUid, os::kRootGid, 0600));
  s.world.push_back(
      sb::file_op(kNtCritical, "[boot]\nshell=explorer.exe\nsecure=yes\n"));
  s.world.push_back(sb::dir_op("/winnt/fonts"));
  s.world.push_back(sb::file_op("/winnt/fonts/stale.fon", "old font data",
                                kAdmin, kAdmin, 0664));
  s.world.push_back(sb::dir_op("/winnt/help"));
  s.world.push_back(sb::file_op("/winnt/help/index.hlp",
                                "help topics: printing, networking\n"));
  s.world.push_back(sb::file_op("/winnt/wall.bmp", "BMPDATA"));
  s.world.push_back(sb::dir_op("/winnt/logs"));
  s.world.push_back(sb::file_op("/winnt/logs/update.log", "log start\n",
                                os::kRootUid, os::kRootGid, 0666));
  s.world.push_back(
      sb::dir_op("/winnt/spool", os::kRootUid, os::kRootGid, 0777));
  s.world.push_back(
      sb::dir_op("/winnt/temp", os::kRootUid, os::kRootGid, 0777));
  s.world.push_back(
      sb::file_op("/winnt/temp/scratch1.tmp", "x", kAdmin, kAdmin, 0666));
  s.world.push_back(
      sb::file_op("/winnt/temp/scratch2.tmp", "y", kAdmin, kAdmin, 0666));
  s.world.push_back(sb::dir_op("/winnt/profiles/default"));
  s.world.push_back(sb::file_op("/winnt/profiles/default/ntuser.ini",
                                "wallpaper=wall.bmp\nlogonscript=/winnt/"
                                "system32/logon.cmd\n"));

  // Attacker staging (any user can reach /tmp).
  sb::add_attacker(s, /*with_evil=*/true);
  s.world.push_back(
      sb::dir_op("/tmp/attacker/profile", kMallory, kMallory, 0755));
  s.world.push_back(sb::file_op("/tmp/attacker/profile/ntuser.ini",
                                "logonscript=/tmp/attacker/evil\n", kMallory,
                                kMallory, 0644));

  // Benign system binaries the modules act on, then the module services
  // themselves, installed set-uid SYSTEM.
  s.world.push_back(sb::program_op("/winnt/system32/logon.cmd", "benign-cmd"));
  s.world.push_back(
      sb::program_op("/winnt/system32/ssmarquee.scr", "benign-cmd"));
  s.world.push_back(
      sb::program_op("/winnt/system32/drwtsn32.exe", "benign-cmd"));
  for (const auto& m : nt_modules())
    s.world.push_back(sb::program_op("/winnt/system32/" + m.module + ".exe",
                                     m.module, os::kRootUid, os::kRootGid,
                                     0755 | os::kSetUidBit));

  // The registry: 9 everyone-write keys with known modules, 20 without,
  // 15 properly protected. 29 unprotected total — the scan result the
  // paper reports.
  for (const auto& m : nt_modules()) {
    core::SpecRegistryKey key;
    key.path = m.key;
    key.owner = kAdmin;
    key.everyone_write = true;
    key.used_by_module = m.module;
    if (m.module == "fontcleanup") key.value = "/winnt/fonts/stale.fon";
    if (m.module == "logonprofile") key.value = "/winnt/profiles/default";
    if (m.module == "screensaver")
      key.value = "/winnt/system32/ssmarquee.scr";
    if (m.module == "helpviewer") key.value = "/winnt/help/index.hlp";
    if (m.module == "wallpaper") key.value = "/winnt/wall.bmp";
    if (m.module == "updater") key.value = "/winnt/logs/update.log";
    if (m.module == "spooler") key.value = "/winnt/spool";
    if (m.module == "aedebug") key.value = "/winnt/system32/drwtsn32.exe";
    if (m.module == "tempclean") key.value = "/winnt/temp";
    s.registry.push_back(std::move(key));
  }
  for (int i = 1; i <= 20; ++i) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "HKLM/Software/Unknown%02d", i);
    core::SpecRegistryKey key;
    key.path = buf;
    key.value = "opaque-value-" + std::to_string(i);
    key.owner = kAdmin;
    key.everyone_write = true;
    s.registry.push_back(std::move(key));
  }
  for (int i = 1; i <= 15; ++i) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "HKLM/Secure/Protected%02d", i);
    core::SpecRegistryKey key;
    key.path = buf;
    key.value = "locked-down";
    key.owner = kAdmin;
    s.registry.push_back(std::move(key));
  }

  s.run.push_back({"/winnt/system32/" + module + ".exe", {module}, kAdmin,
                   kAdmin, {}, "/"});
  s.policy.write_sanction_roots = {"/winnt/spool", "/winnt/logs",
                                   "/winnt/temp"};
  s.policy.secret_files = {kNtSam};
  s.hints.symlink_victim = kNtCritical;
  s.hints.secret_victim = kNtSam;
  s.hints.dir_victim = "/winnt/system32";

  // Key-value tampering payloads: where an attacker would point each key.
  s.hints.content_payloads["regread-fontlist"] = kNtCritical;
  s.hints.content_payloads["regread-profiledir"] = "/tmp/attacker/profile";
  s.hints.content_payloads["regread-scrpath"] = "/tmp/attacker/evil";
  s.hints.content_payloads["regread-helpfile"] = kNtSam;
  s.hints.content_payloads["regread-wallpaper"] = kNtSam;
  s.hints.content_payloads["regread-logpath"] = kNtCritical;
  s.hints.content_payloads["regread-spooldir"] = "/winnt/system32";
  s.hints.content_payloads["regread-debugger"] = "/tmp/attacker/evil";
  s.hints.content_payloads["regread-tempdir"] = "/winnt/system32";
  // Profile tampering: the ini line that redirects the logon script.
  s.hints.content_payloads["open-profile-ini"] =
      "logonscript=/tmp/attacker/evil\n";
  return s;
}

core::Scenario nt_module_scenario(const std::string& module) {
  return core::compile_spec(nt_module_spec(module), spec_environment());
}

std::unique_ptr<core::TargetWorld> nt_registry_world() {
  // Every module spec describes the same world; compile any one of them.
  return nt_module_scenario("fontcleanup").build();
}

std::vector<core::Scenario> nt_module_scenarios() {
  std::vector<core::Scenario> out;
  for (const auto& m : nt_modules()) out.push_back(nt_module_scenario(m.module));
  return out;
}

}  // namespace ep::apps
