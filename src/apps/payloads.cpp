#include "apps/payloads.hpp"

namespace ep::apps {

namespace {
const os::Site kTarRun{"tar.c", 10, "tar-run"};
const os::Site kSendmailRun{"sendmail.c", 10, "sendmail-run"};
const os::Site kEvilWrite{"evil.c", 10, "evil-write-passwd"};
const os::Site kEvilSay{"evil.c", 20, "evil-announce"};
}  // namespace

int tar_main(os::Kernel& k, os::Pid pid) {
  const os::Process& p = k.proc(pid);
  k.output(kTarRun, pid,
           "tar: archived " + std::to_string(p.args.size()) + " arguments");
  return 0;
}

int sendmail_main(os::Kernel& k, os::Pid pid) {
  const os::Process& p = k.proc(pid);
  std::string to = p.args.size() > 1 ? p.args[1] : "postmaster";
  k.output(kSendmailRun, pid, "sendmail: delivered to " + to);
  return 0;
}

int evil_main(os::Kernel& k, os::Pid pid) {
  using os::OpenFlag;
  k.output(kEvilSay, pid, "evil: payload running as euid " +
                              std::to_string(k.proc(pid).euid));
  auto fd = k.open(kEvilWrite, pid, "/etc/passwd",
                   OpenFlag::wr | OpenFlag::append);
  if (fd.ok()) {
    (void)k.write(kEvilWrite, pid, fd.value(),
                  "mallory::0:0:intruder:/:/bin/sh\n");
    (void)k.close(pid, fd.value());
  }
  return 0;
}

void register_payload_images(os::Kernel& k) {
  k.register_image("tar", tar_main);
  k.register_image("sendmail", sendmail_main);
  k.register_image("evil", evil_main);
}

}  // namespace ep::apps
