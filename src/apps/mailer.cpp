#include "apps/mailer.hpp"

#include "apps/fixed_buffer.hpp"
#include "apps/payloads.hpp"
#include "os/world.hpp"
#include "util/strings.hpp"

namespace ep::apps {

using os::OpenFlag;
using os::Site;

namespace {
const Site kArgRecipient{"mailer.c", 30, kMailerArgRecipient};
const Site kGetenvPath{"mailer.c", 45, kMailerGetenvPath};
const Site kCreateSpool{"mailer.c", 60, kMailerCreateSpool};
const Site kExec{"mailer.c", 80, kMailerExec};
const Site kSay{"mailer.c", 90, "mailer-status"};
}  // namespace

int mailer_main(os::Kernel& k, os::Pid pid) {
  // Recipient straight from argv into a fixed buffer — no length check.
  std::string recipient_raw = k.arg(kArgRecipient, pid, 1);
  FixedBuffer rbuf(k, pid, kArgRecipient, 128);
  rbuf.copy_unchecked(recipient_raw);
  const std::string recipient = rbuf.str();
  if (recipient.empty()) {
    k.output(kSay, pid, "mailer: no recipient");
    return 1;
  }

  // Spool path built by concatenation — "../" in the recipient escapes.
  const std::string spool = "/var/spool/mail/" + recipient;
  auto fd = k.open(kCreateSpool, pid, spool,
                   OpenFlag::wr | OpenFlag::creat | OpenFlag::append, 0600);
  if (!fd.ok()) {
    k.output(kSay, pid, "mailer: cannot append to " + spool);
    return 2;
  }
  (void)k.write(kCreateSpool, pid, fd.value(),
                "From " + k.user_name(k.proc(pid).ruid) + "\nmail body\n");
  (void)k.close(pid, fd.value());

  // $PATH taken at face value; "sendmail" resolved through it.
  std::string path = k.getenv(kGetenvPath, pid, "PATH").value_or("");
  if (!path.empty()) k.proc(pid).env["PATH"] = path;
  auto rc = k.exec(kExec, pid, "sendmail", {"sendmail", recipient});
  if (!rc.ok()) {
    k.output(kSay, pid, "mailer: transport agent failed");
    return 3;
  }
  k.output(kSay, pid, "mailer: queued mail for " + recipient);
  return 0;
}

core::Scenario mailer_scenario() {
  core::Scenario s;
  s.name = "mailer";
  s.description =
      "sloppy set-uid mail utility: unchecked argv copy, concatenated "
      "spool path, unsanitized $PATH exec";
  s.trace_unit_filter = "mailer.c";
  s.snapshot_safe = true;

  s.build = [] {
    auto w = std::make_unique<core::TargetWorld>();
    os::Kernel& k = w->kernel;
    os::world::standard_unix(k);
    k.add_user(1000, "alice", 1000);
    k.add_user(1001, "bob", 1001);
    k.add_user(666, "mallory", 666);
    // The mailbox does not exist yet: delivery creates it fresh in the
    // sanctioned spool. (Pre-existing-mailbox handling is exactly what the
    // existence/ownership perturbations probe.)
    os::world::mkdirs(k, "/var/spool/mail", os::kRootUid, os::kRootGid, 0755);
    os::world::mkdirs(k, "/tmp/attacker", 666, 666, 0755);
    os::world::put_program(k, "/tmp/attacker/evil", "evil", 666, 666, 0755);
    // The PATH attack needs the payload to answer to the searched name.
    os::world::put_program(k, "/tmp/attacker/sendmail", "evil", 666, 666,
                           0755);
    register_payload_images(k);
    k.register_image("mailer", mailer_main);
    os::world::put_program(k, "/bin/sendmail", "sendmail", os::kRootUid,
                           os::kRootGid, 0755);
    os::world::put_program(k, "/usr/bin/mailer", "mailer", os::kRootUid,
                           os::kRootGid, 0755 | os::kSetUidBit);
    return w;
  };

  s.run = [](core::TargetWorld& w) {
    auto r = w.kernel.spawn("/usr/bin/mailer", {"mailer", "bob"}, 1000, 1000,
                            {}, "/home");
    return r.ok() ? r.value() : 255;
  };

  s.policy.write_sanction_roots = {"/var/spool/mail"};
  s.policy.secret_files = {"/etc/shadow"};
  s.hints.attacker_uid = 666;
  s.hints.attacker_gid = 666;

  // arg-recipient / getenv / exec get catalog defaults (the point of this
  // scenario); the spool-file site mirrors lpr's applicability argument.
  core::SiteSpec spool_spec;
  spool_spec.faults = {"file-existence", "file-ownership", "file-permission",
                       "symbolic-link"};
  spool_spec.not_applicable = {
      {"working-directory", "spool path is absolute"}};
  s.sites[kMailerCreateSpool] = spool_spec;

  core::SiteSpec exec_spec;
  exec_spec.faults = {"file-existence", "file-ownership", "file-permission",
                      "symbolic-link", "content-invariance"};
  s.sites[kMailerExec] = exec_spec;
  return s;
}

}  // namespace ep::apps
