#include "apps/mailer.hpp"

#include "apps/fixed_buffer.hpp"
#include "apps/spec_env.hpp"

namespace ep::apps {

using os::OpenFlag;
using os::Site;

namespace {
const Site kArgRecipient{"mailer.c", 30, kMailerArgRecipient};
const Site kGetenvPath{"mailer.c", 45, kMailerGetenvPath};
const Site kCreateSpool{"mailer.c", 60, kMailerCreateSpool};
const Site kExec{"mailer.c", 80, kMailerExec};
const Site kSay{"mailer.c", 90, "mailer-status"};
}  // namespace

int mailer_main(os::Kernel& k, os::Pid pid) {
  // Recipient straight from argv into a fixed buffer — no length check.
  std::string recipient_raw = k.arg(kArgRecipient, pid, 1);
  FixedBuffer rbuf(k, pid, kArgRecipient, 128);
  rbuf.copy_unchecked(recipient_raw);
  const std::string recipient = rbuf.str();
  if (recipient.empty()) {
    k.output(kSay, pid, "mailer: no recipient");
    return 1;
  }

  // Spool path built by concatenation — "../" in the recipient escapes.
  const std::string spool = "/var/spool/mail/" + recipient;
  auto fd = k.open(kCreateSpool, pid, spool,
                   OpenFlag::wr | OpenFlag::creat | OpenFlag::append, 0600);
  if (!fd.ok()) {
    k.output(kSay, pid, "mailer: cannot append to " + spool);
    return 2;
  }
  (void)k.write(kCreateSpool, pid, fd.value(),
                "From " + k.user_name(k.proc(pid).ruid) + "\nmail body\n");
  (void)k.close(pid, fd.value());

  // $PATH taken at face value; "sendmail" resolved through it.
  std::string path = k.getenv(kGetenvPath, pid, "PATH").value_or("");
  if (!path.empty()) k.proc(pid).env["PATH"] = path;
  auto rc = k.exec(kExec, pid, "sendmail", {"sendmail", recipient});
  if (!rc.ok()) {
    k.output(kSay, pid, "mailer: transport agent failed");
    return 3;
  }
  k.output(kSay, pid, "mailer: queued mail for " + recipient);
  return 0;
}

core::ScenarioSpec mailer_spec() {
  namespace sb = core::spec_builders;
  core::ScenarioSpec s;
  s.name = "mailer";
  s.description =
      "sloppy set-uid mail utility: unchecked argv copy, concatenated "
      "spool path, unsanitized $PATH exec";
  s.trace_unit_filter = "mailer.c";
  sb::add_alice(s);
  s.users.push_back({1001, "bob", 1001});
  s.images = {"mailer"};
  sb::add_payload_images(s);
  // The mailbox does not exist yet: delivery creates it fresh in the
  // sanctioned spool. (Pre-existing-mailbox handling is exactly what the
  // existence/ownership perturbations probe.)
  s.world.push_back(sb::dir_op("/var/spool/mail"));
  sb::add_attacker(s, /*with_evil=*/true);
  // The PATH attack needs the payload to answer to the searched name.
  s.world.push_back(
      sb::program_op("/tmp/attacker/sendmail", "evil", 666, 666, 0755));
  s.world.push_back(sb::program_op("/bin/sendmail", "sendmail"));
  s.world.push_back(sb::program_op("/usr/bin/mailer", "mailer", os::kRootUid,
                                   os::kRootGid, 0755 | os::kSetUidBit));
  s.run.push_back(
      {"/usr/bin/mailer", {"mailer", "bob"}, 1000, 1000, {}, "/home"});

  s.policy.write_sanction_roots = {"/var/spool/mail"};
  s.policy.secret_files = {"/etc/shadow"};

  // arg-recipient / getenv / exec get catalog defaults (the point of this
  // scenario); the spool-file site mirrors lpr's applicability argument.
  core::SiteSpec spool_spec;
  spool_spec.faults = {"file-existence", "file-ownership", "file-permission",
                       "symbolic-link"};
  spool_spec.not_applicable = {
      {"working-directory", "spool path is absolute"}};
  s.sites.emplace_back(kMailerCreateSpool, spool_spec);

  core::SiteSpec exec_spec;
  exec_spec.faults = {"file-existence", "file-ownership", "file-permission",
                      "symbolic-link", "content-invariance"};
  s.sites.emplace_back(kMailerExec, exec_spec);
  return s;
}

core::Scenario mailer_scenario() {
  return core::compile_spec(mailer_spec(), spec_environment());
}

}  // namespace ep::apps
