// Generated scenario families: three templates that expand into 100+
// deterministic, snapshot-safe scenarios.
//
//   fam-spool    (32) — a spool helper fed by argv and the environment:
//                       path depth x spool-dir ACL x privilege x buffer
//                       guard discipline.
//   fam-relay    (36) — a store-and-forward daemon: peer-script length x
//                       fail-open/fail-closed gate x perimeter trust x
//                       receive-buffer capacity.
//   fam-regchain (36) — registry indirection chains ending in a
//                       filesystem effect: chain length x action
//                       (exec/write/read) x key ACL x invoking privilege.
//
// Every member is a plain ScenarioSpec: stably named, serializable, and
// compiled through the same spec compiler as the packaged scenarios, so
// generated names work on every epa_cli command and every data plane.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/scenario_family.hpp"
#include "core/scenario_spec.hpp"

namespace ep::apps {

/// The packaged families, in listing order.
const std::vector<core::ScenarioFamily>& scenario_families();

/// Family lookup by name; nullptr when unknown.
const core::ScenarioFamily* find_family(const std::string& name);

/// Compile every member of `family` against the standard environment.
std::vector<core::Scenario> family_scenarios(
    const core::ScenarioFamily& family);

/// Resolve one generated scenario by its stable member name (e.g.
/// "fam-spool-d2-open-setuid-tight"); nullopt when no family generates
/// that name.
std::optional<core::Scenario> find_generated_scenario(
    const std::string& name);

/// The family images and service handlers (used by spec_environment()).
void register_family_environment(core::SpecEnvironment& env);

}  // namespace ep::apps
