// `mailer`: a deliberately sloppy set-uid mail submission utility.
//
// It exhibits three classic indirect-fault failure modes the vulnerability
// study (Tables 2/4) says dominate real flaws:
//   * it copies the recipient into a fixed buffer with no bounds check,
//   * it builds the spool path from the raw recipient string ("../" walks
//     out of the spool),
//   * it locates its transport agent via $PATH without sanitizing it.
// Used by the Figure 1 bench (indirect vs direct propagation) and the
// baseline comparison.
#pragma once

#include "core/campaign.hpp"
#include "core/scenario_spec.hpp"
#include "os/kernel.hpp"

namespace ep::apps {

int mailer_main(os::Kernel& k, os::Pid pid);

inline constexpr const char* kMailerArgRecipient = "arg-recipient";
inline constexpr const char* kMailerGetenvPath = "mailer-getenv-path";
inline constexpr const char* kMailerCreateSpool = "create-spoolfile";
inline constexpr const char* kMailerExec = "exec-sendmail";

core::ScenarioSpec mailer_spec();

core::Scenario mailer_scenario();

}  // namespace ep::apps
