// `vault`: the TOCTTOU (time-of-check-to-time-of-use) demonstration.
//
// Bishop and Dilger's race-condition work (Related Work, Section 5)
// identifies check/use pairs statically but "cannot always determine
// whether the environmental conditions necessary ... exist"; the paper's
// answer is to *inject* the dangerous condition between check and use and
// watch. `vault` is the minimal such program: a set-uid utility that
// appends a user's note to a user-named ledger file, guarding the
// privileged write with access(2):
//
//     if (access(path, W_OK) == 0)      // check: may the invoker write?
//         fd = open(path, O_WRONLY);    // use:   write with root privilege
//
// The injector fires a symbolic-link perturbation at the *use* site —
// after the check has passed — which is precisely the race an attacker
// wins in the wild. The fixed build re-validates through the descriptor
// it actually opened (fstat), closing the window.
#pragma once

#include "core/campaign.hpp"
#include "core/scenario_spec.hpp"
#include "os/kernel.hpp"

namespace ep::apps {

int vault_main(os::Kernel& k, os::Pid pid);
int vault_fixed_main(os::Kernel& k, os::Pid pid);

inline constexpr const char* kVaultCheck = "vault-access-check";
inline constexpr const char* kVaultUse = "vault-open-use";

core::ScenarioSpec vault_spec(bool fixed);

core::Scenario vault_scenario();
core::Scenario vault_fixed_scenario();

}  // namespace ep::apps
