#include "apps/lpr.hpp"

#include "apps/payloads.hpp"
#include "os/world.hpp"

namespace ep::apps {

using os::OpenFlag;
using os::Site;

namespace {
const Site kCreate{"lpr.c", 42, kLprCreateTag};
const Site kWrite{"lpr.c", 55, kLprWriteTag};
const Site kSay{"lpr.c", 60, "lpr-status"};
}  // namespace

int lpr_main(os::Kernel& k, os::Pid pid) {
  const os::Process& p = k.proc(pid);
  // f = create(n, 0660); — the paper's fragment. create(2) truncates an
  // existing file, which is precisely the assumption under test.
  auto f = k.open(kCreate, pid, kLprSpoolFile,
                  OpenFlag::wr | OpenFlag::creat | OpenFlag::trunc, 0660);
  if (!f.ok()) {
    k.output(kSay, pid, std::string("lpr: cannot create ") + kLprSpoolFile);
    return 1;
  }
  std::string job = "job(" + k.user_name(p.ruid) + "):";
  for (std::size_t i = 1; i < k.argc(pid); ++i) job += " " + p.args[i];
  job += "\n";
  if (!k.write(kWrite, pid, f.value(), job).ok()) {
    k.output(kSay, pid, "lpr: temp file write error");
    (void)k.close(pid, f.value());
    return 1;
  }
  (void)k.close(pid, f.value());
  k.output(kSay, pid, "lpr: job queued");
  return 0;
}

core::Scenario lpr_scenario() {
  core::Scenario s;
  s.name = "lpr";
  s.description =
      "BSD lpr spool-file creation (Section 3.4): perturb the temp file's "
      "attributes at the create interaction point";
  s.trace_unit_filter = "lpr.c";
  // build() is deterministic and self-contained: one frozen prototype
  // world may be cloned per run (see core/snapshot.hpp).
  s.snapshot_safe = true;

  s.build = [] {
    auto w = std::make_unique<core::TargetWorld>();
    os::Kernel& k = w->kernel;
    os::world::standard_unix(k);
    k.add_user(1000, "alice", 1000);
    k.add_user(666, "mallory", 666);
    os::world::mkdirs(k, "/var/spool/lpd", os::kRootUid, os::kRootGid, 0755);
    os::world::mkdirs(k, "/tmp/attacker", 666, 666, 0755);
    os::world::put_program(k, "/tmp/attacker/evil", "evil", 666, 666, 0755);
    k.register_image("lpr", lpr_main);
    register_payload_images(k);
    os::world::put_program(k, "/usr/bin/lpr", "lpr", os::kRootUid,
                           os::kRootGid, 0755 | os::kSetUidBit);
    return w;
  };

  s.run = [](core::TargetWorld& w) {
    auto r = w.kernel.spawn("/usr/bin/lpr", {"lpr", "report.txt"}, 1000, 1000);
    return r.ok() ? r.value() : 255;
  };

  s.policy.write_sanction_roots = {"/var/spool/lpd"};
  s.policy.secret_files = {"/etc/shadow"};

  core::SiteSpec create_spec;
  create_spec.faults = {"file-existence", "file-ownership", "file-permission",
                        "symbolic-link"};
  create_spec.not_applicable = {
      {"content-invariance",
       "this is supposed to be the first time the file is encountered"},
      {"name-invariance",
       "this is supposed to be the first time the file is encountered"},
      {"working-directory", "lpr names the spool file absolutely"},
  };
  s.sites[kLprCreateTag] = create_spec;

  s.hints.attacker_uid = 666;
  s.hints.attacker_gid = 666;
  return s;
}

}  // namespace ep::apps
