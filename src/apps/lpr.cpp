#include "apps/lpr.hpp"

#include "apps/spec_env.hpp"

namespace ep::apps {

using os::OpenFlag;
using os::Site;

namespace {
const Site kCreate{"lpr.c", 42, kLprCreateTag};
const Site kWrite{"lpr.c", 55, kLprWriteTag};
const Site kSay{"lpr.c", 60, "lpr-status"};
}  // namespace

int lpr_main(os::Kernel& k, os::Pid pid) {
  const os::Process& p = k.proc(pid);
  // f = create(n, 0660); — the paper's fragment. create(2) truncates an
  // existing file, which is precisely the assumption under test.
  auto f = k.open(kCreate, pid, kLprSpoolFile,
                  OpenFlag::wr | OpenFlag::creat | OpenFlag::trunc, 0660);
  if (!f.ok()) {
    k.output(kSay, pid, std::string("lpr: cannot create ") + kLprSpoolFile);
    return 1;
  }
  std::string job = "job(" + k.user_name(p.ruid) + "):";
  for (std::size_t i = 1; i < k.argc(pid); ++i) job += " " + p.args[i];
  job += "\n";
  if (!k.write(kWrite, pid, f.value(), job).ok()) {
    k.output(kSay, pid, "lpr: temp file write error");
    (void)k.close(pid, f.value());
    return 1;
  }
  (void)k.close(pid, f.value());
  k.output(kSay, pid, "lpr: job queued");
  return 0;
}

core::ScenarioSpec lpr_spec() {
  namespace sb = core::spec_builders;
  core::ScenarioSpec s;
  s.name = "lpr";
  s.description =
      "BSD lpr spool-file creation (Section 3.4): perturb the temp file's "
      "attributes at the create interaction point";
  s.trace_unit_filter = "lpr.c";
  sb::add_alice(s);
  s.images = {"lpr"};
  sb::add_payload_images(s);
  s.world.push_back(sb::dir_op("/var/spool/lpd"));
  sb::add_attacker(s, /*with_evil=*/true);
  s.world.push_back(sb::program_op("/usr/bin/lpr", "lpr", os::kRootUid,
                                   os::kRootGid, 0755 | os::kSetUidBit));
  s.run.push_back({"/usr/bin/lpr", {"lpr", "report.txt"}, 1000, 1000, {}, "/"});

  s.policy.write_sanction_roots = {"/var/spool/lpd"};
  s.policy.secret_files = {"/etc/shadow"};

  core::SiteSpec create_spec;
  create_spec.faults = {"file-existence", "file-ownership", "file-permission",
                        "symbolic-link"};
  create_spec.not_applicable = {
      {"content-invariance",
       "this is supposed to be the first time the file is encountered"},
      {"name-invariance",
       "this is supposed to be the first time the file is encountered"},
      {"working-directory", "lpr names the spool file absolutely"},
  };
  s.sites.emplace_back(kLprCreateTag, create_spec);
  return s;
}

core::Scenario lpr_scenario() {
  return core::compile_spec(lpr_spec(), spec_environment());
}

}  // namespace ep::apps
