// FixedBuffer: the simulated fixed-size C buffer.
//
// Target programs copy environment-derived strings into these. An
// *unchecked* copy that exceeds capacity is the classic smash: it reports
// a buffer_overflow app fault through the kernel (so the oracle sees a
// memory-safety violation if the process is privileged, and the Fuzz
// baseline sees the subsequent crash) and then aborts the program the way
// a SIGSEGV would. A *checked* copy models strncpy-style defensive code.
#pragma once

#include <string>

#include "os/kernel.hpp"

namespace ep::apps {

class FixedBuffer {
 public:
  FixedBuffer(os::Kernel& k, os::Pid pid, os::Site site, std::size_t capacity)
      : kernel_(k), pid_(pid), site_(std::move(site)), capacity_(capacity) {}

  /// strcpy: no bounds check. Overflow = report + crash.
  void copy_unchecked(const std::string& s) {
    if (s.size() >= capacity_) {
      kernel_.app_fault(site_, pid_, os::AppFault::buffer_overflow,
                        "copied " + std::to_string(s.size()) +
                            " bytes into a " + std::to_string(capacity_) +
                            "-byte buffer");
      data_ = s.substr(0, capacity_ - 1);
      throw os::AppCrash{139, "buffer overflow at " + site_.str()};
    }
    data_ = s;
  }

  /// strncpy-with-check: returns false (and copies nothing) if it no fit.
  [[nodiscard]] bool copy_checked(const std::string& s) {
    if (s.size() >= capacity_) return false;
    data_ = s;
    return true;
  }

  [[nodiscard]] const std::string& str() const { return data_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  os::Kernel& kernel_;
  os::Pid pid_;
  os::Site site_;
  std::size_t capacity_;
  std::string data_;
};

}  // namespace ep::apps
