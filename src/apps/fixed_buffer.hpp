// FixedBuffer: the simulated fixed-size C buffer.
//
// Target programs copy environment-derived strings into these. An
// *unchecked* copy that exceeds capacity is the classic smash: it reports
// a buffer_overflow app fault through the kernel (so the oracle sees a
// memory-safety violation if the process is privileged, and the Fuzz
// baseline sees the subsequent crash) and then aborts the program the way
// a SIGSEGV would. A *checked* copy models strncpy-style defensive code.
//
// Every buffer also carries a token-poisoned redzone past its storage
// (see os/redzone.hpp): the constructor registers the guard with the
// kernel and the destructor validates it, so a *wild* copy — one that
// silently runs past capacity without self-reporting, the corruption
// class copy_unchecked's explicit check cannot model — is caught as an
// AppFault::redzone_corruption at the buffer's site.
#pragma once

#include <algorithm>
#include <string>

#include "os/kernel.hpp"
#include "os/redzone.hpp"

namespace ep::apps {

class FixedBuffer {
 public:
  FixedBuffer(os::Kernel& k, os::Pid pid, os::Site site, std::size_t capacity)
      : kernel_(k), pid_(pid), site_(std::move(site)), capacity_(capacity) {
    kernel_.register_redzone_guard(
        site_, pid_, "buffer at " + site_.str(), &redzone_);
  }

  /// Validates the guard (reporting redzone_corruption if a wild copy
  /// overwrote the poison) and drops the registration. Runs during
  /// AppCrash unwinding too, so a crashing run still gets its report.
  ~FixedBuffer() { kernel_.unregister_redzone_guard(&redzone_); }

  // The kernel holds a pointer to redzone_ until destruction; a copied
  // buffer would dangle or double-report.
  FixedBuffer(const FixedBuffer&) = delete;
  FixedBuffer& operator=(const FixedBuffer&) = delete;

  /// strcpy: no bounds check. Overflow = report + crash.
  void copy_unchecked(const std::string& s) {
    if (s.size() >= capacity_) {
      kernel_.app_fault(site_, pid_, os::AppFault::buffer_overflow,
                        "copied " + std::to_string(s.size()) +
                            " bytes into a " + std::to_string(capacity_) +
                            "-byte buffer");
      data_ = s.substr(0, capacity_ - 1);
      throw os::AppCrash{139, "buffer overflow at " + site_.str()};
    }
    data_ = s;
  }

  /// strncpy-with-check: returns false (and copies nothing) when the
  /// string does not fit. Never touches the redzone — a checked copy is
  /// exactly the defensive idiom the guard exists to vindicate.
  [[nodiscard]] bool copy_checked(const std::string& s) {
    if (s.size() >= capacity_) return false;
    data_ = s;
    return true;
  }

  /// memcpy with a wrong (or missing) length computation: copies up to
  /// capacity into storage and lets the excess run silently into the
  /// redzone. No report, no crash — the program keeps running on
  /// corrupted memory. Detection is the oracle's job, at the next
  /// syscall touching the region or at the buffer's destruction.
  void copy_wild(const std::string& s) {
    data_ = s.substr(0, std::min(s.size(), capacity_));
    if (s.size() > capacity_) {
      std::size_t spill = std::min(s.size() - capacity_, redzone_.size());
      redzone_.replace(0, spill, s, capacity_, spill);
    }
  }

  [[nodiscard]] const std::string& str() const { return data_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  os::Kernel& kernel_;
  os::Pid pid_;
  os::Site site_;
  std::size_t capacity_;
  std::string data_;
  std::string redzone_ = os::redzone::poison();
};

}  // namespace ep::apps
