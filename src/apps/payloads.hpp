// Common auxiliary program images installed into scenario worlds:
// the benign `tar`/`sendmail`-style helpers and the attacker's payload.
#pragma once

#include "os/kernel.hpp"

namespace ep::apps {

/// Benign archiver: validates its arguments and reports success. Runs as
/// a child of the program under test; its sites live in unit "tar.c".
int tar_main(os::Kernel& k, os::Pid pid);

/// Benign mail transport; unit "sendmail.c".
int sendmail_main(os::Kernel& k, os::Pid pid);

/// The attacker's payload: tries to append to /etc/passwd with whatever
/// privilege it inherited, and announces itself. Executing this at all is
/// the compromise; the passwd write is the measurable damage.
int evil_main(os::Kernel& k, os::Pid pid);

/// Register all three images under their conventional names
/// ("tar", "sendmail", "evil").
void register_payload_images(os::Kernel& k);

}  // namespace ep::apps
