// Network and IPC daemons exercising Table 6's network and process rows.
//
//   * `logind` — a privileged login daemon. The vulnerable build commits
//     every sin in the catalog: it ignores message authenticity and
//     protocol order, never checks whether its socket is shared, and
//     fails *open* when the authentication service is down or replaced.
//     The hardened build checks all of it.
//   * `netcpd` — a file server whose request parser copies the peer's
//     packet into a fixed buffer unchecked (network-input indirect
//     faults) and which resolves hostnames through perturbable DNS.
//   * `cronhelpd` — a privileged scheduler that takes job requests over
//     local IPC and fetches a signing key from a helper process
//     (process-entity faults); it fails open when the helper is gone.
//   * `rshd` — a remote-shell daemon authenticating by hostname: it
//     exercises the host-name, command, and IP-address semantics of
//     Table 5 (unchecked hostname buffer, validate-first-token-execute-
//     all command dispatch, blindly trusted resolver answers).
#pragma once

#include "core/campaign.hpp"
#include "core/scenario_spec.hpp"
#include "net/network.hpp"
#include "os/kernel.hpp"

namespace ep::apps {

// The daemon images reach the network through the kernel they are
// handed (clone-safe), so they can be registered in the shared spec
// environment alongside the site tags and scenario factories.

inline constexpr const char* kLogindAccept = "logind-accept";
inline constexpr const char* kLogindRecv = "logind-recv";
inline constexpr const char* kLogindQueryAuth = "logind-query-authsvc";
inline constexpr const char* kLogindSend = "logind-send-reply";

inline constexpr const char* kNetcpdRecv = "netcpd-recv-request";
inline constexpr const char* kNetcpdDns = "netcpd-resolve-host";
inline constexpr const char* kNetcpdOpenFile = "netcpd-open-file";

inline constexpr const char* kCronRecvJob = "cron-recv-job";
inline constexpr const char* kCronQueryKey = "cron-query-keymaster";

inline constexpr const char* kRshdRecvHost = "rshd-recv-hostname";
inline constexpr const char* kRshdRecvCmd = "rshd-recv-command";
inline constexpr const char* kRshdDns = "rshd-resolve-host";
inline constexpr const char* kRshdEquiv = "rshd-read-hosts-equiv";
inline constexpr const char* kRshdExec = "rshd-exec-command";

// Daemon app images (spec-environment entries).
int logind_image(os::Kernel& k, os::Pid pid);
int logind_hardened_image(os::Kernel& k, os::Pid pid);
int netcpd_image(os::Kernel& k, os::Pid pid);
int cronhelpd_image(os::Kernel& k, os::Pid pid);
int rshd_image(os::Kernel& k, os::Pid pid);
int benign_cmd_image(os::Kernel& k, os::Pid pid);

// Service handlers referenced by name from specs.
net::Message authsvc_handler(const net::Message& m);
net::Message keymaster_handler(const net::Message& m);

// Declarative specs; the scenario factories compile them against the
// standard environment.
core::ScenarioSpec logind_spec(bool hardened);
core::ScenarioSpec netcpd_spec();
core::ScenarioSpec cronhelpd_spec();
core::ScenarioSpec rshd_spec();

core::Scenario logind_scenario();
core::Scenario logind_hardened_scenario();
core::Scenario netcpd_scenario();
core::Scenario cronhelpd_scenario();
core::Scenario rshd_scenario();

}  // namespace ep::apps
