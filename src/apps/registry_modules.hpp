// The Section 4.2 case study: Windows NT registry keys and the modules
// that consume them.
//
// The paper scanned NT 4.0 SP3 for registry keys whose ACL lets everyone
// write, cross-referenced them with the OS modules that read them (static
// analysis), and perturb-tested those modules: 29 unprotected keys were
// found, the 9 with known consuming modules were all exploited, and the
// remaining 20 could not be perturbed for lack of module knowledge.
//
// Under its agreement with Microsoft the paper withholds the key names;
// we model the two modules it does describe (a font-file cleaner that
// deletes whatever file a key names, and a logon module that loads the
// user profile from a key-named directory) plus seven more of the same
// shapes, over an NT-flavored file tree.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/campaign.hpp"
#include "core/scenario_spec.hpp"
#include "os/kernel.hpp"

namespace ep::apps {

/// The NT world: users (SYSTEM=0, administrator=500, mallory=666), the
/// /winnt tree (SAM, critical.ini, fonts, profiles, spool, temp), the
/// attacker staging area, all 9 module programs, and the registry with
/// 29 everyone-write keys (9 cross-referenced to modules) + 15 protected.
std::unique_ptr<core::TargetWorld> nt_registry_world();

struct NtModuleInfo {
  std::string module;  // e.g. "fontcleanup"
  std::string key;     // the registry key it consumes
  std::string what;    // one-line description of the privileged effect
};

/// Static cross-reference of the 9 testable unprotected keys.
std::vector<NtModuleInfo> nt_modules();

/// The nine module images, in nt_modules() order (spec-environment
/// entries; each reads the registry through its own kernel).
std::vector<std::pair<std::string, os::AppImage>> nt_module_images();

/// The NT flavor of the benign helper binary (distinct output site from
/// rshd's benign-cmd; same kernel name).
int nt_benign_cmd_image(os::Kernel& k, os::Pid pid);

/// The declarative spec for one module's scenario (all nine share the
/// same world; run recipe, trace filter and hints differ).
core::ScenarioSpec nt_module_spec(const std::string& module);

/// A perturbation campaign scenario for one module (by module name).
core::Scenario nt_module_scenario(const std::string& module);

/// All 9 module scenarios.
std::vector<core::Scenario> nt_module_scenarios();

inline constexpr const char* kNtSam = "/winnt/system32/config/sam";
inline constexpr const char* kNtCritical = "/winnt/system32/critical.ini";

}  // namespace ep::apps
