// One-stop access to every packaged scenario, for benches, examples, and
// integration tests.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "apps/daemons.hpp"
#include "apps/lpr.hpp"
#include "apps/mailer.hpp"
#include "apps/registry_modules.hpp"
#include "apps/turnin.hpp"
#include "apps/journald.hpp"
#include "apps/vault.hpp"

namespace ep::apps {

/// Every scenario in the suite (lpr, turnin, turnin-hardened, mailer,
/// logind, logind-hardened, netcpd, cronhelpd, and the 9 NT modules).
std::vector<core::Scenario> all_scenarios();

/// Resolve any scenario name reachable from the command line: the
/// packaged suite, then the unlisted "redzone-demo" demo, then the
/// generated family members ("fam-spool-d2-open-setuid-tight", ...).
std::optional<core::Scenario> resolve_scenario(const std::string& name);

/// The declarative spec behind any resolvable name — what `epa_cli
/// scenarios --spec NAME` serializes and `--scenario-file` consumes.
/// Every scenario in the tool is spec-backed, so this covers the same
/// names as resolve_scenario().
std::optional<core::ScenarioSpec> resolve_spec(const std::string& name);

/// One-line inventory for unknown-scenario errors: every packaged name,
/// redzone-demo, and each family as a "<family>-* (N members)" pattern.
std::string scenario_names_hint();

}  // namespace ep::apps
