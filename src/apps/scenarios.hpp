// One-stop access to every packaged scenario, for benches, examples, and
// integration tests.
#pragma once

#include <vector>

#include "apps/daemons.hpp"
#include "apps/lpr.hpp"
#include "apps/mailer.hpp"
#include "apps/registry_modules.hpp"
#include "apps/turnin.hpp"
#include "apps/journald.hpp"
#include "apps/vault.hpp"

namespace ep::apps {

/// Every scenario in the suite (lpr, turnin, turnin-hardened, mailer,
/// logind, logind-hardened, netcpd, cronhelpd, and the 9 NT modules).
std::vector<core::Scenario> all_scenarios();

}  // namespace ep::apps
