#include "apps/daemons.hpp"

#include "apps/fixed_buffer.hpp"
#include "apps/payloads.hpp"
#include "apps/spec_env.hpp"
#include "os/world.hpp"
#include "util/strings.hpp"

namespace ep::apps {

using os::OpenFlag;
using os::Site;

namespace {

// ---- logind ----------------------------------------------------------------

const Site kLAccept{"logind.c", 20, kLogindAccept};
const Site kLRecv{"logind.c", 30, kLogindRecv};
const Site kLQuery{"logind.c", 60, kLogindQueryAuth};
const Site kLSend{"logind.c", 90, kLogindSend};
const Site kLGrant{"logind.c", 95, "grant-login"};
const Site kLSay{"logind.c", 99, "logind-status"};

int logind_impl(os::Kernel& k, os::Pid pid, net::Network& net,
                bool hardened) {
  auto sock = net.accept(k, kLAccept, pid);
  if (!sock.ok()) return 1;
  if (hardened && net.socket_shared(sock.value())) {
    k.output(kLSay, pid, "logind: socket shared with another process");
    return 1;
  }

  // Conversation: HELLO, AUTH(user:pass), BYE.
  const std::vector<std::string> expected = {"HELLO", "AUTH", "BYE"};
  std::size_t step = 0;
  std::string creds;
  for (;;) {
    auto msg = net.recv(k, kLRecv, pid, sock.value());
    if (!msg.ok()) break;
    if (hardened) {
      if (!msg.value().authentic) {
        k.output(kLSay, pid, "logind: unauthentic message dropped");
        return 1;
      }
      if (step >= expected.size() || msg.value().type != expected[step]) {
        k.output(kLSay, pid, "logind: protocol violation");
        return 1;
      }
      ++step;
      if (!net.peer_trusted(sock.value())) {
        k.output(kLSay, pid, "logind: untrusted peer");
        return 1;
      }
    }
    // Parse the payload into the fixed request buffer. The vulnerable
    // build copies without a bound; the hardened build checks.
    FixedBuffer buf(k, pid, kLRecv, 256);
    if (hardened) {
      if (!buf.copy_checked(msg.value().payload)) {
        k.output(kLSay, pid, "logind: oversized message dropped");
        return 1;
      }
    } else {
      buf.copy_unchecked(msg.value().payload);
    }
    if (msg.value().type == "AUTH" || ep::contains(buf.str(), ":"))
      creds = buf.str();
  }
  if (creds.empty()) {
    k.output(kLSay, pid, "logind: no credentials presented");
    return 1;
  }

  auto asock = net.connect(k, kLQuery, pid, "authsvc");
  bool authorized = false;
  if (!asock.ok()) {
    if (hardened) {
      k.output(kLSay, pid, "logind: auth service unavailable, refusing");
      return 1;
    }
    // THE BUG: fail-open when the authority is unreachable.
    authorized = true;
  } else {
    if (hardened && !net.peer_trusted(asock.value())) {
      k.output(kLSay, pid, "logind: auth service is not trusted, refusing");
      return 1;
    }
    net::Message q;
    q.type = "AUTH";
    q.payload = creds;
    auto reply = net.query(k, kLQuery, pid, asock.value(), q);
    authorized = reply.ok() && reply.value().type == "AUTH_OK";
  }
  if (!authorized) {
    net::Message deny;
    deny.type = "DENIED";
    (void)net.send(k, kLSend, pid, sock.value(), deny);
    k.output(kLSay, pid, "logind: login denied");
    return 1;
  }
  // Last look before the privileged effect: the socket may have been
  // shared mid-conversation.
  if (hardened && net.socket_shared(sock.value())) {
    k.output(kLSay, pid, "logind: socket no longer exclusive, refusing");
    return 1;
  }

  k.privileged_action(kLGrant, pid, "grant-login", true);
  net::Message okmsg;
  okmsg.type = "GRANTED";
  okmsg.payload = "session-token-1";
  (void)net.send(k, kLSend, pid, sock.value(), okmsg);
  k.output(kLSay, pid, "logind: login granted");
  return 0;
}

// ---- netcpd ----------------------------------------------------------------

const Site kNRecv{"netcpd.c", 20, kNetcpdRecv};
const Site kNDns{"netcpd.c", 40, kNetcpdDns};
const Site kNOpen{"netcpd.c", 60, kNetcpdOpenFile};
const Site kNServe{"netcpd.c", 75, "serve-file"};
const Site kNSay{"netcpd.c", 90, "netcpd-status"};

int netcpd_impl(os::Kernel& k, os::Pid pid, net::Network& net) {
  auto sock = net.accept(k, kNRecv, pid);
  if (!sock.ok()) return 1;
  auto msg = net.recv(k, kNRecv, pid, sock.value());
  if (!msg.ok()) {
    k.output(kNSay, pid, "netcpd: no request");
    return 1;
  }
  // Request "host:file" parsed into a fixed buffer — unchecked.
  FixedBuffer req(k, pid, kNRecv, 128);
  req.copy_unchecked(msg.value().payload);
  auto parts = ep::split(req.str(), ':');
  if (parts.size() != 2 || parts[0].empty() || parts[1].empty()) {
    k.output(kNSay, pid, "netcpd: malformed request");
    return 1;
  }
  const std::string& host = parts[0];
  const std::string& file = parts[1];

  auto ip_r = net.resolve_host(k, kNDns, pid, host);
  if (!ip_r.ok()) {
    k.output(kNSay, pid, "netcpd: cannot resolve " + host);
    return 1;
  }
  FixedBuffer ipbuf(k, pid, kNDns, 64);
  ipbuf.copy_unchecked(ip_r.value());  // DNS replies trusted blindly
  if (!ep::starts_with(ipbuf.str(), "10.0.")) {
    k.output(kNSay, pid, "netcpd: foreign address refused");
    return 1;
  }

  if (ep::contains(file, "..") || ep::starts_with(file, "/")) {
    k.output(kNSay, pid, "netcpd: illegal path");
    return 1;
  }
  auto fd = k.open(kNOpen, pid, "/srv/pub/" + file, OpenFlag::rd);
  if (!fd.ok()) {
    k.output(kNSay, pid, "netcpd: no such file " + file);
    return 1;
  }
  auto content = k.read(kNOpen, pid, fd.value());
  (void)k.close(pid, fd.value());
  if (!content.ok()) return 1;

  k.privileged_action(kNServe, pid, "serve-file", true);
  net::Message reply;
  reply.type = "DATA";
  reply.payload = content.value();
  (void)net.send(k, kNServe, pid, sock.value(), reply);
  k.output(kNSay, pid, "netcpd: served " + file);
  return 0;
}

// ---- cronhelpd -------------------------------------------------------------

const Site kCRecv{"cronhelpd.c", 20, kCronRecvJob};
const Site kCQuery{"cronhelpd.c", 40, kCronQueryKey};
const Site kCApply{"cronhelpd.c", 60, "apply-schedule"};
const Site kCSay{"cronhelpd.c", 90, "cronhelpd-status"};

int cronhelpd_impl(os::Kernel& k, os::Pid pid, net::Network& net) {
  auto sock = net.accept(k, kCRecv, pid);
  if (!sock.ok()) return 1;
  auto job = net.recv(k, kCRecv, pid, sock.value());
  if (!job.ok()) {
    k.output(kCSay, pid, "cronhelpd: no job request");
    return 1;
  }
  FixedBuffer jbuf(k, pid, kCRecv, 256);
  jbuf.copy_unchecked(job.value().payload);  // no authenticity, no bound

  auto ksock = net.connect(k, kCQuery, pid, "keymaster");
  bool approved = false;
  if (!ksock.ok()) {
    // THE BUG: apply the schedule unsigned when the keymaster is gone.
    approved = true;
  } else {
    net::Message q;
    q.type = "GET_KEY";
    q.payload = jbuf.str();
    auto reply = net.query(k, kCQuery, pid, ksock.value(), q);
    FixedBuffer kbuf(k, pid, kCQuery, 128);
    approved = reply.ok() && reply.value().type == "AUTH_OK" &&
               kbuf.copy_checked(reply.value().payload);
  }
  if (!approved) {
    k.output(kCSay, pid, "cronhelpd: job rejected");
    return 1;
  }
  k.privileged_action(kCApply, pid, "apply-schedule", true);
  k.output(kCSay, pid, "cronhelpd: schedule applied");
  return 0;
}

// ---- rshd ------------------------------------------------------------------

const Site kRHost{"rshd.c", 20, kRshdRecvHost};
const Site kRCmd{"rshd.c", 30, kRshdRecvCmd};
const Site kRDns{"rshd.c", 40, kRshdDns};
const Site kREquiv{"rshd.c", 50, kRshdEquiv};
const Site kRExec{"rshd.c", 70, kRshdExec};
const Site kRGrant{"rshd.c", 65, "rshd-grant"};
const Site kRSay{"rshd.c", 90, "rshd-status"};

bool allowed_command(const std::string& cmd) {
  return cmd == "ls" || cmd == "who" || cmd == "uptime";
}

int rshd_impl(os::Kernel& k, os::Pid pid, net::Network& net) {
  auto sock = net.accept(k, kRHost, pid);
  if (!sock.ok()) return 1;

  // Message 1: the client's claimed hostname — straight into a fixed
  // buffer, no bound (Table 5: host name / change length).
  auto hostmsg = net.recv(k, kRHost, pid, sock.value());
  if (!hostmsg.ok()) return 1;
  FixedBuffer hostbuf(k, pid, kRHost, 64);
  hostbuf.copy_unchecked(hostmsg.value().payload);
  const std::string host = hostbuf.str();

  // Forward-confirm the hostname; the resolver's answer is trusted
  // blindly (Table 5: IP address / DNS reply).
  auto ip = net.resolve_host(k, kRDns, pid, host);
  if (!ip.ok()) {
    k.output(kRSay, pid, "rshd: cannot resolve " + host);
    return 1;
  }
  FixedBuffer ipbuf(k, pid, kRDns, 64);
  ipbuf.copy_unchecked(ip.value());
  if (!ep::starts_with(ipbuf.str(), "10.0.")) {
    k.output(kRSay, pid, "rshd: foreign network refused");
    return 1;
  }

  // hosts.equiv decides whether the host may run commands here.
  auto eq = k.open(kREquiv, pid, "/etc/hosts.equiv", os::OpenFlag::rd);
  if (!eq.ok()) {
    k.output(kRSay, pid, "rshd: no hosts.equiv, refusing");
    return 1;
  }
  bool equivalent = false;
  for (;;) {
    auto line = k.read_line(kREquiv, pid, eq.value());
    if (!line.ok()) break;
    if (line.value() == host) equivalent = true;
  }
  (void)k.close(pid, eq.value());
  if (!equivalent) {
    k.output(kRSay, pid, "rshd: host " + host + " is not equivalent");
    return 1;
  }

  // Message 2: the command line. THE BUG: only the first token is held
  // against the allowlist, but every ';'/newline-separated part runs.
  auto cmdmsg = net.recv(k, kRCmd, pid, sock.value());
  if (!cmdmsg.ok()) return 1;
  FixedBuffer cmdbuf(k, pid, kRCmd, 512);
  if (!cmdbuf.copy_checked(cmdmsg.value().payload)) {
    k.output(kRSay, pid, "rshd: command too long");
    return 1;
  }
  std::string cmdline = ep::replace_all(cmdbuf.str(), "\n", ";");
  auto parts = ep::split_nonempty(cmdline, ';');
  if (parts.empty() || !allowed_command(ep::trim(parts[0]))) {
    k.output(kRSay, pid, "rshd: command not permitted");
    return 1;
  }
  k.privileged_action(kRGrant, pid, "run-remote-command", true);
  for (const auto& part : parts) {
    std::string cmd = ep::trim(part);
    if (cmd.empty()) continue;
    auto rc = k.exec(kRExec, pid, cmd, {cmd});
    if (!rc.ok())
      k.output(kRSay, pid, "rshd: " + cmd + " failed to run");
  }
  k.output(kRSay, pid, "rshd: done for " + host);
  return 0;
}

}  // namespace

// ---- exported images and handlers ------------------------------------------
// The images reach the network through the kernel they are handed, so
// they always talk to the world they run in (clone-safe; see
// Kernel::attach_substrates).

int logind_image(os::Kernel& k, os::Pid pid) {
  return logind_impl(k, pid, *k.network(), /*hardened=*/false);
}

int logind_hardened_image(os::Kernel& k, os::Pid pid) {
  return logind_impl(k, pid, *k.network(), /*hardened=*/true);
}

int netcpd_image(os::Kernel& k, os::Pid pid) {
  return netcpd_impl(k, pid, *k.network());
}

int cronhelpd_image(os::Kernel& k, os::Pid pid) {
  return cronhelpd_impl(k, pid, *k.network());
}

int rshd_image(os::Kernel& k, os::Pid pid) {
  return rshd_impl(k, pid, *k.network());
}

int benign_cmd_image(os::Kernel& k, os::Pid pid) {
  k.output(Site{"bin.c", 1, "bin-run"}, pid,
           k.proc(pid).args.empty() ? "ran" : k.proc(pid).args[0] + " ran");
  return 0;
}

net::Message authsvc_handler(const net::Message& m) {
  net::Message r;
  r.type = m.payload == "alice:sesame" ? "AUTH_OK" : "AUTH_FAIL";
  return r;
}

net::Message keymaster_handler(const net::Message&) {
  net::Message r;
  r.type = "AUTH_OK";
  r.payload = "signkey-123";
  return r;
}

// ---- declarative specs -----------------------------------------------------

namespace {

namespace sb = core::spec_builders;

/// The auth service plus the scripted HELLO/AUTH/BYE login conversation
/// the logind variants share.
void add_login_conversation(core::ScenarioSpec& s) {
  core::SpecService auth;
  auth.name = "authsvc";
  auth.kind = net::ChannelKind::network;
  auth.handler = "authsvc";
  s.network.services.push_back(auth);

  core::SpecClientScript script;
  script.peer = "client-host";
  script.kind = net::ChannelKind::network;
  script.protocol = {"HELLO", "AUTH", "BYE"};
  script.inbound = {
      {"client-host", "HELLO", "client1", true},
      {"client-host", "AUTH", "alice:sesame", true},
      {"client-host", "BYE", "", true},
  };
  s.network.client = script;
}

}  // namespace

core::ScenarioSpec logind_spec(bool hardened) {
  core::ScenarioSpec s;
  s.name = hardened ? "logind-hardened" : "logind";
  s.description =
      "privileged login daemon: message authenticity, protocol order, "
      "socket sharing, auth-service availability and trustability";
  s.trace_unit_filter = "logind.c";
  sb::add_alice(s);
  s.images = {hardened ? "logind-hardened" : "logind"};
  sb::add_payload_images(s);
  sb::add_attacker(s, /*with_evil=*/false);
  add_login_conversation(s);
  s.world.push_back(sb::program_op("/usr/sbin/logind", "logind"));
  s.run.push_back(
      {"/usr/sbin/logind", {"logind"}, os::kRootUid, os::kRootGid, {}, "/"});
  s.policy.watch_all = true;
  s.policy.require_auth_confirmation = true;
  s.policy.secret_files = {"/etc/shadow"};
  return s;
}

core::ScenarioSpec netcpd_spec() {
  core::ScenarioSpec s;
  s.name = "netcpd";
  s.description =
      "network file server: unchecked request parsing, blind DNS trust, "
      "symlinkable served files";
  s.trace_unit_filter = "netcpd.c";
  s.images = {"netcpd"};
  sb::add_attacker(s, /*with_evil=*/false);
  s.world.push_back(sb::dir_op("/srv/pub"));
  s.world.push_back(
      sb::file_op("/srv/pub/readme.txt", "public documentation text\n"));
  s.network.hosts.push_back({"fileserver.corp", "10.0.0.7"});
  core::SpecClientScript script;
  script.peer = "10.0.0.5";
  script.kind = net::ChannelKind::network;
  script.protocol = {"REQ"};
  script.inbound = {{"10.0.0.5", "REQ", "fileserver.corp:readme.txt", true}};
  s.network.client = script;
  s.world.push_back(sb::program_op("/usr/sbin/netcpd", "netcpd"));
  s.run.push_back(
      {"/usr/sbin/netcpd", {"netcpd"}, os::kRootUid, os::kRootGid, {}, "/"});
  s.policy.watch_all = true;
  s.policy.secret_files = {"/etc/shadow"};
  core::SiteSpec dns_spec;
  dns_spec.faults = {"dns-change-length", "dns-bad-format"};
  s.sites.emplace_back(kNetcpdDns, dns_spec);
  return s;
}

core::ScenarioSpec cronhelpd_spec() {
  core::ScenarioSpec s;
  s.name = "cronhelpd";
  s.description =
      "privileged scheduler fed over local IPC, signing key fetched from a "
      "helper process (Table 6 process-entity faults)";
  s.trace_unit_filter = "cronhelpd.c";
  s.images = {"cronhelpd"};
  sb::add_attacker(s, /*with_evil=*/false);
  core::SpecService keymaster;
  keymaster.name = "keymaster";
  keymaster.kind = net::ChannelKind::ipc;
  keymaster.handler = "keymaster";
  s.network.services.push_back(keymaster);
  core::SpecClientScript script;
  script.peer = "cronclient";
  script.kind = net::ChannelKind::ipc;
  script.protocol = {"JOB"};
  script.inbound = {{"cronclient", "JOB", "job=cleanup", true}};
  s.network.client = script;
  s.world.push_back(sb::program_op("/usr/sbin/cronhelpd", "cronhelpd"));
  s.run.push_back({"/usr/sbin/cronhelpd",
                   {"cronhelpd"},
                   os::kRootUid,
                   os::kRootGid,
                   {},
                   "/"});
  s.policy.watch_all = true;
  s.policy.require_auth_confirmation = true;
  return s;
}

core::ScenarioSpec rshd_spec() {
  core::ScenarioSpec s;
  s.name = "rshd";
  s.description =
      "remote-shell daemon with hostname authentication: unchecked "
      "hostname/resolver buffers, validate-first-execute-all dispatch";
  s.trace_unit_filter = "rshd.c";
  s.images = {"rshd", "benign-cmd"};
  sb::add_payload_images(s);
  sb::add_attacker(s, /*with_evil=*/true);
  s.world.push_back(sb::program_op("/bin/ls", "benign-cmd"));
  s.world.push_back(sb::program_op("/bin/who", "benign-cmd"));
  s.world.push_back(sb::program_op("/bin/uptime", "benign-cmd"));
  s.world.push_back(
      sb::file_op("/etc/hosts.equiv", "trusted.corp\npartner.corp\n"));
  s.network.hosts.push_back({"trusted.corp", "10.0.0.21"});
  core::SpecClientScript script;
  script.peer = "trusted.corp";
  script.kind = net::ChannelKind::network;
  script.protocol = {"HOST", "CMD"};
  script.inbound = {{"trusted.corp", "HOST", "trusted.corp", true},
                    {"trusted.corp", "CMD", "ls", true}};
  s.network.client = script;
  s.world.push_back(sb::program_op("/usr/sbin/rshd", "rshd"));
  s.run.push_back(
      {"/usr/sbin/rshd", {"rshd"}, os::kRootUid, os::kRootGid, {}, "/"});
  s.policy.watch_all = true;
  s.policy.secret_files = {"/etc/shadow"};

  // Declared semantics: the first message is a hostname, the second a
  // command, and the resolver's reply is an IP address (Table 5 rows the
  // default packet inference would miss).
  core::SiteSpec host_spec;
  host_spec.semantic = core::InputSemantic::host_name;
  s.sites.emplace_back(kRshdRecvHost, host_spec);
  core::SiteSpec cmd_spec;
  cmd_spec.semantic = core::InputSemantic::command;
  s.sites.emplace_back(kRshdRecvCmd, cmd_spec);
  core::SiteSpec dns_spec;
  dns_spec.kind = core::ObjectKind::net_service;
  dns_spec.semantic = core::InputSemantic::ip_address;
  dns_spec.faults = {"ip-change-length", "ip-bad-format"};
  s.sites.emplace_back(kRshdDns, dns_spec);
  return s;
}

core::Scenario logind_scenario() {
  return core::compile_spec(logind_spec(false), spec_environment());
}

core::Scenario logind_hardened_scenario() {
  return core::compile_spec(logind_spec(true), spec_environment());
}

core::Scenario netcpd_scenario() {
  return core::compile_spec(netcpd_spec(), spec_environment());
}

core::Scenario cronhelpd_scenario() {
  return core::compile_spec(cronhelpd_spec(), spec_environment());
}

core::Scenario rshd_scenario() {
  return core::compile_spec(rshd_spec(), spec_environment());
}

}  // namespace ep::apps
