#include "apps/vault.hpp"

#include "apps/spec_env.hpp"

namespace ep::apps {

using os::OpenFlag;
using os::Site;

namespace {

const Site kArg{"vault.c", 10, "vault-arg-ledger"};
const Site kCheck{"vault.c", 20, kVaultCheck};
const Site kUse{"vault.c", 30, kVaultUse};
const Site kSay{"vault.c", 40, "vault-status"};

int vault_impl(os::Kernel& k, os::Pid pid, bool fixed) {
  std::string ledger = k.arg(kArg, pid, 1);
  if (ledger.empty()) {
    k.output(kSay, pid, "vault: usage: vault <ledger>");
    return 1;
  }

  // CHECK: would the *invoker* be allowed to write this file?
  if (!k.access(kCheck, pid, ledger, os::Perm::write).ok()) {
    k.output(kSay, pid, "vault: you may not write " + ledger);
    return 2;
  }

  // ... the race window ...

  // USE: write with root privilege.
  auto fd = k.open(kUse, pid, ledger, OpenFlag::wr | OpenFlag::append);
  if (!fd.ok()) {
    k.output(kSay, pid, "vault: cannot open " + ledger);
    return 3;
  }
  if (fixed) {
    // The repair: re-validate the object actually opened. The descriptor
    // pins the inode, so this check cannot be raced.
    auto st = k.fstat(pid, fd.value());
    const os::Process& p = k.proc(pid);
    if (!st.ok() ||
        !(st.value().uid == p.ruid ||
          (st.value().mode & os::kOtherWrite) != 0)) {
      k.output(kSay, pid, "vault: object changed between check and use");
      (void)k.close(pid, fd.value());
      return 4;
    }
  }
  (void)k.write(kUse, pid, fd.value(),
                "note from " + k.user_name(k.proc(pid).ruid) + "\n");
  (void)k.close(pid, fd.value());
  k.output(kSay, pid, "vault: note appended to " + ledger);
  return 0;
}

core::ScenarioSpec vault_spec_impl(bool fixed) {
  namespace sb = core::spec_builders;
  core::ScenarioSpec s;
  s.name = fixed ? "vault-fixed" : "vault";
  s.description =
      "set-uid ledger writer with an access()/open() TOCTTOU window";
  s.trace_unit_filter = "vault.c";
  sb::add_alice(s);
  // Both variant images are registered; which one /usr/bin/vault runs is
  // the spec's choice.
  s.images = {"vault", "vault-fixed"};
  sb::add_payload_images(s);
  sb::add_attacker(s, /*with_evil=*/true);
  // The ledger lives in world-writable /tmp — the precondition for the
  // race (Bishop-Dilger's "environmental condition").
  s.world.push_back(
      sb::file_op("/tmp/ledger", "ledger start\n", 1000, 1000, 0644));
  s.world.push_back(sb::program_op("/usr/bin/vault",
                                   fixed ? "vault-fixed" : "vault",
                                   os::kRootUid, os::kRootGid,
                                   0755 | os::kSetUidBit));
  s.run.push_back(
      {"/usr/bin/vault", {"vault", "/tmp/ledger"}, 1000, 1000, {}, "/tmp"});
  s.policy.secret_files = {"/etc/shadow"};
  return s;
}

}  // namespace

int vault_main(os::Kernel& k, os::Pid pid) {
  return vault_impl(k, pid, /*fixed=*/false);
}

int vault_fixed_main(os::Kernel& k, os::Pid pid) {
  return vault_impl(k, pid, /*fixed=*/true);
}

core::ScenarioSpec vault_spec(bool fixed) { return vault_spec_impl(fixed); }

core::Scenario vault_scenario() {
  return core::compile_spec(vault_spec_impl(false), spec_environment());
}

core::Scenario vault_fixed_scenario() {
  return core::compile_spec(vault_spec_impl(true), spec_environment());
}

}  // namespace ep::apps
