#include "apps/vault.hpp"

#include "apps/payloads.hpp"
#include "os/world.hpp"

namespace ep::apps {

using os::OpenFlag;
using os::Site;

namespace {

const Site kArg{"vault.c", 10, "vault-arg-ledger"};
const Site kCheck{"vault.c", 20, kVaultCheck};
const Site kUse{"vault.c", 30, kVaultUse};
const Site kSay{"vault.c", 40, "vault-status"};

int vault_impl(os::Kernel& k, os::Pid pid, bool fixed) {
  std::string ledger = k.arg(kArg, pid, 1);
  if (ledger.empty()) {
    k.output(kSay, pid, "vault: usage: vault <ledger>");
    return 1;
  }

  // CHECK: would the *invoker* be allowed to write this file?
  if (!k.access(kCheck, pid, ledger, os::Perm::write).ok()) {
    k.output(kSay, pid, "vault: you may not write " + ledger);
    return 2;
  }

  // ... the race window ...

  // USE: write with root privilege.
  auto fd = k.open(kUse, pid, ledger, OpenFlag::wr | OpenFlag::append);
  if (!fd.ok()) {
    k.output(kSay, pid, "vault: cannot open " + ledger);
    return 3;
  }
  if (fixed) {
    // The repair: re-validate the object actually opened. The descriptor
    // pins the inode, so this check cannot be raced.
    auto st = k.fstat(pid, fd.value());
    const os::Process& p = k.proc(pid);
    if (!st.ok() ||
        !(st.value().uid == p.ruid ||
          (st.value().mode & os::kOtherWrite) != 0)) {
      k.output(kSay, pid, "vault: object changed between check and use");
      (void)k.close(pid, fd.value());
      return 4;
    }
  }
  (void)k.write(kUse, pid, fd.value(),
                "note from " + k.user_name(k.proc(pid).ruid) + "\n");
  (void)k.close(pid, fd.value());
  k.output(kSay, pid, "vault: note appended to " + ledger);
  return 0;
}

core::Scenario vault_scenario_impl(bool fixed) {
  core::Scenario s;
  s.name = fixed ? "vault-fixed" : "vault";
  s.description =
      "set-uid ledger writer with an access()/open() TOCTTOU window";
  s.trace_unit_filter = "vault.c";
  s.snapshot_safe = true;
  s.build = [fixed] {
    auto w = std::make_unique<core::TargetWorld>();
    os::Kernel& k = w->kernel;
    os::world::standard_unix(k);
    k.add_user(1000, "alice", 1000);
    k.add_user(666, "mallory", 666);
    os::world::mkdirs(k, "/tmp/attacker", 666, 666, 0755);
    os::world::put_program(k, "/tmp/attacker/evil", "evil", 666, 666, 0755);
    // The ledger lives in world-writable /tmp — the precondition for the
    // race (Bishop-Dilger's "environmental condition").
    os::world::put_file(k, "/tmp/ledger", "ledger start\n", 1000, 1000,
                        0644);
    register_payload_images(k);
    k.register_image("vault", vault_main);
    k.register_image("vault-fixed", vault_fixed_main);
    os::world::put_program(k, "/usr/bin/vault",
                           fixed ? "vault-fixed" : "vault", os::kRootUid,
                           os::kRootGid, 0755 | os::kSetUidBit);
    return w;
  };
  s.run = [](core::TargetWorld& w) {
    auto r = w.kernel.spawn("/usr/bin/vault", {"vault", "/tmp/ledger"},
                            1000, 1000, {}, "/tmp");
    return r.ok() ? r.value() : 255;
  };
  s.policy.secret_files = {"/etc/shadow"};
  s.hints.attacker_uid = 666;
  s.hints.attacker_gid = 666;
  return s;
}

}  // namespace

int vault_main(os::Kernel& k, os::Pid pid) {
  return vault_impl(k, pid, /*fixed=*/false);
}

int vault_fixed_main(os::Kernel& k, os::Pid pid) {
  return vault_impl(k, pid, /*fixed=*/true);
}

core::Scenario vault_scenario() { return vault_scenario_impl(false); }
core::Scenario vault_fixed_scenario() { return vault_scenario_impl(true); }

}  // namespace ep::apps
