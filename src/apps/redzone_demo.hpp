// `redzone-demo`: the regression vehicle for the redzone memory oracle.
//
// A banner printer that copies the invoker-supplied $BANNER into a
// fixed 16-byte buffer with a *wild* copy (apps/fixed_buffer.hpp:
// copy_wild) — the memcpy-with-a-wrong-length idiom that neither checks
// nor crashes, it just runs silently past the end. The benign value
// fits; the change-length perturbation (Table 5, user input / file
// name) hands the program a kilobytes-long value whose tail lands in
// the buffer's poisoned redzone, and the oracle reports
// redzone-corruption at the copy site when the buffer's guard is
// validated.
//
// Deliberately NOT part of apps::all_scenarios(): the 21-scenario seed
// suite is a pinned negative control (every seed scenario must run
// clean under the oracle), while this scenario exists to fire. epa_cli
// resolves it by name, and CI's redzone smoke leg drives it across the
// pipe/shm data planes.
#pragma once

#include "core/campaign.hpp"
#include "core/scenario_spec.hpp"
#include "os/kernel.hpp"

namespace ep::apps {

int banner_main(os::Kernel& k, os::Pid pid);

inline constexpr const char* kBannerGetEnv = "banner-getenv-banner";
inline constexpr const char* kBannerCopy = "banner-copy-line";
inline constexpr std::size_t kBannerCapacity = 16;

core::ScenarioSpec redzone_demo_spec();

core::Scenario redzone_demo_scenario();

}  // namespace ep::apps
