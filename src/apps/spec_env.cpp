#include "apps/spec_env.hpp"

#include "apps/daemons.hpp"
#include "apps/families.hpp"
#include "apps/journald.hpp"
#include "apps/lpr.hpp"
#include "apps/mailer.hpp"
#include "apps/payloads.hpp"
#include "apps/redzone_demo.hpp"
#include "apps/registry_modules.hpp"
#include "apps/turnin.hpp"
#include "apps/vault.hpp"

namespace ep::apps {

const core::SpecEnvironment& spec_environment() {
  static const core::SpecEnvironment env = [] {
    core::SpecEnvironment e;
    auto img = [&e](const std::string& name, const std::string& kernel_name,
                    os::AppImage image) {
      e.images[name] = {kernel_name, std::move(image)};
    };
    // Payloads (registered by almost every scenario).
    img("tar", "tar", tar_main);
    img("sendmail", "sendmail", sendmail_main);
    img("evil", "evil", evil_main);
    // Packaged applications.
    img("lpr", "lpr", lpr_main);
    img("turnin", "turnin", turnin_main);
    img("turnin-hardened", "turnin-hardened", turnin_hardened_main);
    img("mailer", "mailer", mailer_main);
    img("vault", "vault", vault_main);
    img("vault-fixed", "vault-fixed", vault_fixed_main);
    img("journald", "journald", journald_main);
    img("banner", "banner", banner_main);
    // Daemons. Both logind variants run under the kernel name "logind" —
    // which code /usr/sbin/logind executes is the scenario's choice, not
    // the program path's.
    img("logind", "logind", logind_image);
    img("logind-hardened", "logind", logind_hardened_image);
    img("netcpd", "netcpd", netcpd_image);
    img("cronhelpd", "cronhelpd", cronhelpd_image);
    img("rshd", "rshd", rshd_image);
    img("benign-cmd", "benign-cmd", benign_cmd_image);
    // The NT registry case study: nine modules plus its own benign
    // helper (same kernel name as rshd's, different output site).
    img("nt-benign-cmd", "benign-cmd", nt_benign_cmd_image);
    for (const auto& [name, image] : nt_module_images())
      img(name, name, image);
    // Generated families.
    register_family_environment(e);
    // Service handlers (stateless pure functions; clone-safe).
    e.handlers["authsvc"] = authsvc_handler;
    e.handlers["keymaster"] = keymaster_handler;
    return e;
  }();
  return env;
}

}  // namespace ep::apps
