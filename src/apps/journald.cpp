#include "apps/journald.hpp"

#include "apps/spec_env.hpp"
#include "util/strings.hpp"

namespace ep::apps {

using os::OpenFlag;
using os::Site;

namespace {

const Site kGetMask{"journald.c", 15, kJournaldGetMask};
const Site kCreate{"journald.c", 30, kJournaldCreate};
const Site kSay{"journald.c", 40, "journald-status"};

unsigned parse_octal(const std::string& s, unsigned fallback) {
  if (s.empty()) return fallback;
  unsigned v = 0;
  for (char c : s) {
    if (c < '0' || c > '7') return fallback;
    v = v * 8 + static_cast<unsigned>(c - '0');
  }
  return v & 0777;
}

}  // namespace

int journald_main(os::Kernel& k, os::Pid pid) {
  // The mask is taken from the environment as-is — the assumption under
  // test. (A hardened logger would clamp it: umask |= 022.)
  std::string mask_str = k.getenv(kGetMask, pid, "UMASK").value_or("022");
  k.proc(pid).umask = parse_octal(mask_str, 022);

  auto fd = k.open(kCreate, pid, kJournaldPath,
                   OpenFlag::wr | OpenFlag::creat | OpenFlag::append, 0666);
  if (!fd.ok()) {
    k.output(kSay, pid, "journald: cannot open journal");
    return 1;
  }
  (void)k.write(kCreate, pid, fd.value(), "audit: session opened by " +
                                              k.user_name(k.proc(pid).ruid) +
                                              "\n");
  (void)k.close(pid, fd.value());
  k.output(kSay, pid, "journald: entry written");
  return 0;
}

core::ScenarioSpec journald_spec() {
  namespace sb = core::spec_builders;
  core::ScenarioSpec s;
  s.name = "journald";
  s.description =
      "privileged logger honoring the invoker-supplied creation mask "
      "(Table 5: permission mask)";
  s.trace_unit_filter = "journald.c";
  sb::add_alice(s);
  s.images = {"journald"};
  sb::add_payload_images(s);
  sb::add_attacker(s, /*with_evil=*/false);
  s.world.push_back(sb::dir_op("/var/log"));
  s.world.push_back(sb::program_op("/usr/sbin/journald", "journald",
                                   os::kRootUid, os::kRootGid,
                                   0755 | os::kSetUidBit));
  // The invoker's environment carries a sane mask in the benign world.
  s.run.push_back({"/usr/sbin/journald",
                   {"journald"},
                   1000,
                   1000,
                   {{"UMASK", "022"}},
                   "/home"});
  s.policy.write_sanction_roots = {"/var/log"};
  s.policy.secret_files = {"/etc/shadow"};
  return s;
}

core::Scenario journald_scenario() {
  return core::compile_spec(journald_spec(), spec_environment());
}

}  // namespace ep::apps
