#include "apps/families.hpp"

#include <memory>

#include "apps/fixed_buffer.hpp"
#include "apps/spec_env.hpp"
#include "net/network.hpp"
#include "os/kernel.hpp"
#include "reg/registry.hpp"
#include "util/strings.hpp"

namespace ep::apps {

using core::FamilyPoint;
using core::ScenarioFamily;
using core::ScenarioSpec;
using os::OpenFlag;
using os::Site;
namespace sb = core::spec_builders;

namespace {

std::string at(const FamilyPoint& point, const std::string& axis) {
  auto it = point.find(axis);
  return it == point.end() ? std::string() : it->second;
}

// ---- fam-spool: the spool helper -----------------------------------------

const Site kSpArgDir{"famspool.c", 10, "spool-arg-dir"};
const Site kSpEnvJob{"famspool.c", 20, "spool-getenv-job"};
const Site kSpCopy{"famspool.c", 25, "spool-copy-name"};
const Site kSpCreate{"famspool.c", 30, "spool-create-job"};
const Site kSpWrite{"famspool.c", 40, "spool-write-job"};
const Site kSpSay{"famspool.c", 50, "spool-status"};

int family_spool_main(os::Kernel& k, os::Pid pid) {
  const os::Process& p = k.proc(pid);
  // argv: famspool <spool-dir> <tight|roomy>
  std::string dir = k.arg(kSpArgDir, pid, 1);
  bool tight = p.args.size() > 2 && p.args[2] == "tight";
  if (dir.empty()) {
    k.output(kSpSay, pid, "famspool: no spool directory");
    return 2;
  }
  std::string job = k.getenv(kSpEnvJob, pid, "SPOOLJOB").value_or("job1");
  FixedBuffer name(k, pid, kSpCopy, tight ? 8 : 64);
  if (tight) {
    // THE BUG (tight variants): a miscomputed length lets long job names
    // run silently into the redzone.
    name.copy_wild(job);
  } else if (!name.copy_checked(job)) {
    k.output(kSpSay, pid, "famspool: job name too long");
    return 2;
  }
  std::string path = dir + "/" + name.str();
  auto f = k.open(kSpCreate, pid, path,
                  OpenFlag::wr | OpenFlag::creat | OpenFlag::trunc, 0660);
  if (!f.ok()) {
    k.output(kSpSay, pid, "famspool: cannot create " + path);
    return 1;
  }
  if (!k.write(kSpWrite, pid, f.value(),
               "queued by " + k.user_name(p.ruid) + "\n")
           .ok()) {
    (void)k.close(pid, f.value());
    return 1;
  }
  (void)k.close(pid, f.value());
  k.output(kSpSay, pid, "famspool: queued " + name.str());
  return 0;
}

ScenarioSpec spool_spec(const FamilyPoint& point) {
  std::string depth = at(point, "depth");      // d1..d4
  std::string access = at(point, "access");    // open | owned
  std::string priv = at(point, "priv");        // setuid | plain
  std::string guard = at(point, "guard");      // tight | roomy

  std::string dir = "/srv/spool";
  int levels = depth.size() == 2 ? depth[1] - '0' : 1;
  for (int i = 1; i < levels; ++i) dir += "/q" + std::to_string(i);

  ScenarioSpec s;
  s.description = "generated spool helper: depth " + std::to_string(levels) +
                  ", " + access + " spool dir, " + priv + " binary, " +
                  guard + " name buffer";
  s.trace_unit_filter = "famspool.c";
  sb::add_alice(s);
  s.images = {"fam-spool"};
  sb::add_payload_images(s);
  if (access == "open")
    s.world.push_back(sb::dir_op(dir, os::kRootUid, os::kRootGid, 0777));
  else
    s.world.push_back(sb::dir_op(dir, 1000, 1000, 0755));
  sb::add_attacker(s, /*with_evil=*/true);
  unsigned mode = priv == "setuid" ? (0755 | os::kSetUidBit) : 0755u;
  s.world.push_back(sb::program_op("/usr/sbin/famspool", "fam-spool",
                                   os::kRootUid, os::kRootGid, mode));
  s.run.push_back({"/usr/sbin/famspool",
                   {"famspool", dir, guard},
                   1000,
                   1000,
                   {{"SPOOLJOB", "job1"}},
                   "/home"});
  s.policy.write_sanction_roots = {"/srv/spool"};
  s.policy.secret_files = {"/etc/shadow"};
  return s;
}

// ---- fam-relay: the store-and-forward daemon -----------------------------

const Site kRlAccept{"famrelay.c", 10, "relay-accept"};
const Site kRlRecv{"famrelay.c", 20, "relay-recv"};
const Site kRlCopy{"famrelay.c", 25, "relay-copy"};
const Site kRlResolve{"famrelay.c", 30, "relay-resolve-upstream"};
const Site kRlQuery{"famrelay.c", 40, "relay-query-gate"};
const Site kRlForward{"famrelay.c", 50, "relay-forward"};
const Site kRlSay{"famrelay.c", 60, "relay-status"};

int family_relay_main(os::Kernel& k, os::Pid pid) {
  const os::Process& p = k.proc(pid);
  net::Network& net = *k.network();
  // argv: famrelay <open|closed> <checked|trusting> <capacity>
  bool fail_open = p.args.size() > 1 && p.args[1] == "open";
  bool checked = p.args.size() > 2 && p.args[2] == "checked";
  std::size_t cap = 64;
  if (p.args.size() > 3 && !p.args[3].empty())
    cap = static_cast<std::size_t>(std::stoul(p.args[3]));

  auto sock = net.accept(k, kRlAccept, pid);
  if (!sock.ok()) return 1;
  int forwarded = 0;
  for (;;) {
    auto msg = net.recv(k, kRlRecv, pid, sock.value());
    if (!msg.ok()) break;
    FixedBuffer line(k, pid, kRlCopy, cap);
    line.copy_unchecked(msg.value().payload);
    // The payload names its upstream: "host:text".
    std::size_t colon = line.str().find(':');
    std::string host =
        colon == std::string::npos ? line.str() : line.str().substr(0, colon);
    auto ip = net.resolve_host(k, kRlResolve, pid, host);
    if (!ip.ok() || ip.value().rfind("10.0.", 0) != 0) {
      k.output(kRlSay, pid, "famrelay: refusing to relay to " + host);
      continue;
    }
    bool authorized = false;
    if (checked) {
      auto gate = net.connect(k, kRlQuery, pid, "relaygate");
      if (!gate.ok()) {
        if (!fail_open) {
          k.output(kRlSay, pid, "famrelay: gate unreachable, refusing");
          return 1;
        }
        // THE BUG (open variants): fail-open when the gate is down.
        authorized = true;
      } else {
        net::Message q;
        q.type = "AUTH";
        q.payload = host;
        auto reply = net.query(k, kRlQuery, pid, gate.value(), q);
        authorized = reply.ok() && reply.value().type == "AUTH_OK";
      }
    } else {
      // Trusting variants never consult the gate at all.
      authorized = true;
    }
    if (!authorized) {
      k.output(kRlSay, pid, "famrelay: gate denied relay to " + host);
      continue;
    }
    k.privileged_action(kRlForward, pid, "forward-message", true);
    net::Message fwd;
    fwd.type = "FWD";
    fwd.payload = line.str();
    (void)net.send(k, kRlForward, pid, sock.value(), fwd);
    ++forwarded;
  }
  k.output(kRlSay, pid,
           "famrelay: forwarded " + std::to_string(forwarded) + " message(s)");
  return forwarded > 0 ? 0 : 1;
}

net::Message relaygate_handler(const net::Message& m) {
  net::Message r;
  r.type = m.payload == "upstream.corp" ? "AUTH_OK" : "AUTH_FAIL";
  return r;
}

ScenarioSpec relay_spec(const FamilyPoint& point) {
  std::string msgs = at(point, "msgs");      // m1..m3
  std::string gate = at(point, "gate");      // open | closed
  std::string trust = at(point, "trust");    // checked | trusting
  std::string buf = at(point, "buf");        // b16 | b64 | b256
  int count = msgs.size() == 2 ? msgs[1] - '0' : 1;
  std::string cap = buf.substr(1);

  ScenarioSpec s;
  s.description = "generated relay daemon: " + std::to_string(count) +
                  " scripted message(s), fail-" + gate + " gate, " + trust +
                  " perimeter, " + cap + "-byte receive buffer";
  s.trace_unit_filter = "famrelay.c";
  s.images = {"fam-relay"};
  sb::add_attacker(s, /*with_evil=*/false);
  s.world.push_back(sb::program_op("/usr/sbin/famrelay", "fam-relay",
                                   os::kRootUid, os::kRootGid, 0755));
  s.network.hosts.push_back({"upstream.corp", "10.0.0.9"});
  core::SpecService svc;
  svc.name = "relaygate";
  svc.kind = net::ChannelKind::network;
  svc.handler = "relaygate";
  s.network.services.push_back(svc);
  core::SpecClientScript script;
  script.peer = "edge-client";
  script.kind = net::ChannelKind::network;
  for (int i = 1; i <= count; ++i) {
    script.protocol.push_back("FWD");
    net::Message m;
    m.from = "edge-client";
    m.type = "FWD";
    m.payload = "upstream.corp:hello-" + std::to_string(i);
    script.inbound.push_back(m);
  }
  s.network.client = script;
  s.run.push_back({"/usr/sbin/famrelay",
                   {"famrelay", gate, trust, cap},
                   os::kRootUid,
                   os::kRootGid,
                   {},
                   "/"});
  s.policy.watch_all = true;
  s.policy.require_auth_confirmation = trust == "checked";
  s.policy.secret_files = {"/etc/shadow"};
  core::SiteSpec dns_spec;
  dns_spec.faults = {"dns-change-length", "dns-bad-format"};
  s.sites.emplace_back(kRlResolve.tag, dns_spec);
  return s;
}

// ---- fam-regchain: registry indirection chains ---------------------------

const Site kRcRead{"famregchain.c", 10, "regchain-read"};
const Site kRcExec{"famregchain.c", 20, "regchain-exec"};
const Site kRcOpen{"famregchain.c", 30, "regchain-open"};
const Site kRcWrite{"famregchain.c", 40, "regchain-write"};
const Site kRcReadFile{"famregchain.c", 45, "regchain-read-file"};
const Site kRcSay{"famregchain.c", 50, "regchain-status"};

int family_regchain_main(os::Kernel& k, os::Pid pid) {
  const os::Process& p = k.proc(pid);
  reg::Registry& reg = *k.registry();
  // argv: famregchain <exec|write|read>
  std::string action = p.args.size() > 1 ? p.args[1] : "read";

  // Follow the indirection chain: every HKLM/... value is another key,
  // the first non-key value is the filesystem target.
  std::string cursor = "HKLM/Family/Chain1";
  int hops = 0;
  while (cursor.rfind("HKLM/", 0) == 0) {
    if (++hops > 8) {
      k.output(kRcSay, pid, "famregchain: chain too deep");
      return 1;
    }
    auto v = reg.read_value(k, kRcRead, pid, cursor);
    if (!v.ok()) {
      k.output(kRcSay, pid, "famregchain: missing key " + cursor);
      return 1;
    }
    cursor = v.value();
  }
  const std::string& target = cursor;

  if (action == "exec") {
    auto rc = k.exec(kRcExec, pid, target, {target});
    if (!rc.ok() || rc.value() != 0) {
      k.output(kRcSay, pid, "famregchain: cannot run " + target);
      return 1;
    }
  } else if (action == "write") {
    auto f = k.open(kRcOpen, pid, target + "/report.log",
                    OpenFlag::wr | OpenFlag::creat | OpenFlag::trunc, 0644);
    if (!f.ok()) {
      k.output(kRcSay, pid, "famregchain: cannot write under " + target);
      return 1;
    }
    if (!k.write(kRcWrite, pid, f.value(), "maintenance sweep complete\n")
             .ok()) {
      (void)k.close(pid, f.value());
      return 1;
    }
    (void)k.close(pid, f.value());
  } else {
    auto f = k.open(kRcOpen, pid, target, OpenFlag::rd);
    if (!f.ok()) {
      k.output(kRcSay, pid, "famregchain: cannot read " + target);
      return 1;
    }
    auto line = k.read_line(kRcReadFile, pid, f.value());
    (void)k.close(pid, f.value());
    k.output(kRcSay, pid,
             "famregchain: " + (line.ok() ? line.value() : std::string()));
  }
  k.output(kRcSay, pid, "famregchain: " + action + " done");
  return 0;
}

ScenarioSpec regchain_spec(const FamilyPoint& point) {
  std::string chain = at(point, "chain");    // c1..c3
  std::string action = at(point, "action");  // exec | write | read
  std::string acl = at(point, "acl");        // open | locked
  std::string priv = at(point, "priv");      // root | user
  int hops = chain.size() == 2 ? chain[1] - '0' : 1;

  ScenarioSpec s;
  s.description = "generated registry chain: " + std::to_string(hops) +
                  " hop(s) to a " + action + " target, " + acl + " keys, " +
                  priv + " invocation";
  s.trace_unit_filter = "famregchain.c";
  s.standard_unix = true;
  sb::add_alice(s);
  s.images = {"fam-regchain", "benign-cmd"};
  sb::add_payload_images(s);
  // The three possible chain targets exist in every member: only the
  // chain's final value decides which one this scenario touches.
  s.world.push_back(sb::dir_op("/opt/family"));
  s.world.push_back(sb::program_op("/opt/family/helper", "benign-cmd"));
  s.world.push_back(sb::dir_op("/var/family"));
  s.world.push_back(sb::dir_op("/var/family/reports", os::kRootUid,
                               os::kRootGid, 0777));
  s.world.push_back(sb::dir_op("/srv/family"));
  s.world.push_back(
      sb::file_op("/srv/family/notice.txt", "family notice of record\n"));
  sb::add_attacker(s, /*with_evil=*/true);
  s.world.push_back(sb::program_op("/usr/sbin/famregchain", "fam-regchain",
                                   os::kRootUid, os::kRootGid,
                                   0755 | os::kSetUidBit));
  std::string target = action == "exec"   ? "/opt/family/helper"
                       : action == "write" ? "/var/family/reports"
                                           : "/srv/family/notice.txt";
  for (int i = 1; i <= hops; ++i) {
    core::SpecRegistryKey key;
    key.path = "HKLM/Family/Chain" + std::to_string(i);
    key.value =
        i < hops ? "HKLM/Family/Chain" + std::to_string(i + 1) : target;
    key.owner = 500;
    key.everyone_write = acl == "open";
    key.used_by_module = "famregchain";
    s.registry.push_back(key);
  }
  os::Uid uid = priv == "root" ? os::kRootUid : 1000;
  s.run.push_back({"/usr/sbin/famregchain",
                   {"famregchain", action},
                   uid,
                   uid,
                   {},
                   "/"});
  s.policy.write_sanction_roots = {"/var/family/reports"};
  s.policy.secret_files = {"/etc/shadow"};
  // Point value-tamper faults at the victim that matters for this
  // action: run the attacker's binary, write into /etc, leak the shadow
  // file.
  s.hints.content_payloads[kRcRead.tag] =
      action == "exec"   ? "/tmp/attacker/evil"
      : action == "write" ? "/etc"
                          : "/etc/shadow";
  return s;
}

const std::vector<ScenarioFamily>& families() {
  static const std::vector<ScenarioFamily> fams = [] {
    std::vector<ScenarioFamily> f;
    ScenarioFamily spool;
    spool.name = "fam-spool";
    spool.description =
        "spool helper: path depth x spool ACL x privilege x buffer guard";
    spool.axes = {{"depth", {"d1", "d2", "d3", "d4"}},
                  {"access", {"open", "owned"}},
                  {"priv", {"setuid", "plain"}},
                  {"guard", {"tight", "roomy"}}};
    spool.materialize = spool_spec;
    f.push_back(std::move(spool));

    ScenarioFamily relay;
    relay.name = "fam-relay";
    relay.description =
        "relay daemon: script length x gate failure mode x perimeter "
        "trust x buffer capacity";
    relay.axes = {{"msgs", {"m1", "m2", "m3"}},
                  {"gate", {"open", "closed"}},
                  {"trust", {"checked", "trusting"}},
                  {"buf", {"b16", "b64", "b256"}}};
    relay.materialize = relay_spec;
    f.push_back(std::move(relay));

    ScenarioFamily regchain;
    regchain.name = "fam-regchain";
    regchain.description =
        "registry chains: hops x final action x key ACL x privilege";
    regchain.axes = {{"chain", {"c1", "c2", "c3"}},
                     {"action", {"exec", "write", "read"}},
                     {"acl", {"open", "locked"}},
                     {"priv", {"root", "user"}}};
    regchain.materialize = regchain_spec;
    f.push_back(std::move(regchain));
    return f;
  }();
  return fams;
}

}  // namespace

const std::vector<ScenarioFamily>& scenario_families() { return families(); }

const core::ScenarioFamily* find_family(const std::string& name) {
  for (const ScenarioFamily& f : families())
    if (f.name == name) return &f;
  return nullptr;
}

std::vector<core::Scenario> family_scenarios(
    const core::ScenarioFamily& family) {
  std::vector<core::Scenario> out;
  for (const ScenarioSpec& spec : core::expand_family(family))
    out.push_back(core::compile_spec(spec, spec_environment()));
  return out;
}

std::optional<core::Scenario> find_generated_scenario(
    const std::string& name) {
  for (const ScenarioFamily& f : families()) {
    if (name.rfind(f.name + "-", 0) != 0) continue;
    for (const FamilyPoint& point : core::family_grid(f)) {
      if (core::family_member_name(f, point) != name) continue;
      ScenarioSpec spec = f.materialize(point);
      spec.name = name;
      return core::compile_spec(spec, spec_environment());
    }
  }
  return std::nullopt;
}

void register_family_environment(core::SpecEnvironment& env) {
  env.images["fam-spool"] = {"fam-spool", family_spool_main};
  env.images["fam-relay"] = {"fam-relay", family_relay_main};
  env.images["fam-regchain"] = {"fam-regchain", family_regchain_main};
  env.handlers["relaygate"] = relaygate_handler;
}

}  // namespace ep::apps
