#include "apps/scenarios.hpp"

namespace ep::apps {

std::vector<core::Scenario> all_scenarios() {
  std::vector<core::Scenario> out;
  out.push_back(lpr_scenario());
  out.push_back(turnin_scenario());
  out.push_back(turnin_hardened_scenario());
  out.push_back(mailer_scenario());
  out.push_back(logind_scenario());
  out.push_back(logind_hardened_scenario());
  out.push_back(netcpd_scenario());
  out.push_back(cronhelpd_scenario());
  out.push_back(rshd_scenario());
  out.push_back(journald_scenario());
  out.push_back(vault_scenario());
  out.push_back(vault_fixed_scenario());
  for (auto& s : nt_module_scenarios()) out.push_back(std::move(s));
  return out;
}

}  // namespace ep::apps
