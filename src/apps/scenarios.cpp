#include "apps/scenarios.hpp"

#include "apps/families.hpp"
#include "apps/redzone_demo.hpp"

namespace ep::apps {

std::vector<core::Scenario> all_scenarios() {
  std::vector<core::Scenario> out;
  out.push_back(lpr_scenario());
  out.push_back(turnin_scenario());
  out.push_back(turnin_hardened_scenario());
  out.push_back(mailer_scenario());
  out.push_back(logind_scenario());
  out.push_back(logind_hardened_scenario());
  out.push_back(netcpd_scenario());
  out.push_back(cronhelpd_scenario());
  out.push_back(rshd_scenario());
  out.push_back(journald_scenario());
  out.push_back(vault_scenario());
  out.push_back(vault_fixed_scenario());
  for (auto& s : nt_module_scenarios()) out.push_back(std::move(s));
  return out;
}

std::optional<core::Scenario> resolve_scenario(const std::string& name) {
  for (auto& s : all_scenarios()) {
    if (s.name == name) return std::move(s);
  }
  // Reachable by name though absent from the packaged sweep: the redzone
  // oracle demo.
  if (name == "redzone-demo") return redzone_demo_scenario();
  return find_generated_scenario(name);
}

std::optional<core::ScenarioSpec> resolve_spec(const std::string& name) {
  std::vector<core::ScenarioSpec> packaged;
  packaged.push_back(lpr_spec());
  packaged.push_back(turnin_spec(/*hardened=*/false));
  packaged.push_back(turnin_spec(/*hardened=*/true));
  packaged.push_back(mailer_spec());
  packaged.push_back(logind_spec(/*hardened=*/false));
  packaged.push_back(logind_spec(/*hardened=*/true));
  packaged.push_back(netcpd_spec());
  packaged.push_back(cronhelpd_spec());
  packaged.push_back(rshd_spec());
  packaged.push_back(journald_spec());
  packaged.push_back(vault_spec(/*fixed=*/false));
  packaged.push_back(vault_spec(/*fixed=*/true));
  for (const auto& m : nt_modules())
    packaged.push_back(nt_module_spec(m.module));
  packaged.push_back(redzone_demo_spec());
  for (auto& s : packaged) {
    if (s.name == name) return std::move(s);
  }
  for (const auto& f : scenario_families()) {
    if (name.rfind(f.name + "-", 0) != 0) continue;
    for (auto& spec : core::expand_family(f)) {
      if (spec.name == name) return std::move(spec);
    }
  }
  return std::nullopt;
}

std::string scenario_names_hint() {
  std::string out = "scenarios:";
  for (const auto& s : all_scenarios()) out += " " + s.name;
  out += " redzone-demo; families:";
  for (const auto& f : scenario_families()) {
    out += " " + f.name + "-* (" + std::to_string(core::family_size(f)) +
           " members)";
  }
  out += "; see: epa_cli scenarios";
  return out;
}

}  // namespace ep::apps
