// `journald`: the permission-mask row of Table 5.
//
// A privileged logger that honors the file-creation mask it finds in its
// environment — an internal entity the operating system initializes and
// the invoker controls ("change mask to 0 so it will not mask any
// permission bit"). Under the mask-zero perturbation its journal comes
// out world-writable, and any local user can rewrite the audit trail.
#pragma once

#include "core/campaign.hpp"
#include "core/scenario_spec.hpp"
#include "os/kernel.hpp"

namespace ep::apps {

int journald_main(os::Kernel& k, os::Pid pid);

inline constexpr const char* kJournaldGetMask = "journald-getenv-umask";
inline constexpr const char* kJournaldCreate = "journald-create-journal";
inline constexpr const char* kJournaldPath = "/var/log/journal.log";

core::ScenarioSpec journald_spec();

core::Scenario journald_scenario();

}  // namespace ep::apps
