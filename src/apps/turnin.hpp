// The Section 4.1 case study: Purdue's `turnin`.
//
// turnin is set-uid root: it copies a student's files into the teaching
// assistant's protected submit directory. The reimplementation preserves
// the interaction structure the paper reports — 8 interaction points, 41
// perturbations, 9 violations — including the two real vulnerabilities:
//
//   1. `fopen(pcFile, "r")` on the Projlist runs with root privilege and
//      the content is printed back to the invoker; a TA who points
//      Projlist at /etc/shadow (or makes it unreadable) turns `turnin -l`
//      into an arbitrary-file reader.
//   2. File names are validated on a *stripped* copy (leading "./" and
//      "../" removed) but the *original* name builds the destination
//      path, so "../.login" escapes the submit directory and overwrites
//      the TA's .login.
//
// The hardened variant closes every hole a non-root actor could exploit:
// O_NOFOLLOW on config/Projlist, access(2) (real-uid) checks before
// privileged reads, ".."-free name validation, and O_EXCL creation.
#pragma once

#include "core/campaign.hpp"
#include "core/scenario_spec.hpp"
#include "os/kernel.hpp"

namespace ep::apps {

int turnin_main(os::Kernel& k, os::Pid pid);
int turnin_hardened_main(os::Kernel& k, os::Pid pid);

// Site tags: the 8 interaction points of Section 4.1.
inline constexpr const char* kTurninArgCourse = "arg-course";
inline constexpr const char* kTurninOpenConfig = "open-config";
inline constexpr const char* kTurninOpenProjlist = "fopen-projlist";
inline constexpr const char* kTurninGetenvPath = "getenv-path";
inline constexpr const char* kTurninArgFile = "arg-filename";
inline constexpr const char* kTurninOpenSource = "open-source";
inline constexpr const char* kTurninCreateDest = "create-dest";
inline constexpr const char* kTurninExecTar = "exec-tar";

inline constexpr const char* kTurninConfigPath = "/usr/local/lib/turnin.cf";
inline constexpr const char* kTurninSubmitDir = "/home/ta/submit";

/// The declarative spec both variants compile (same world and fault
/// plan; the program op picks the binary).
core::ScenarioSpec turnin_spec(bool hardened);

/// The full Section 4.1 scenario (vulnerable turnin).
core::Scenario turnin_scenario();
/// Same world and fault plan, hardened binary — the "faults removed"
/// program used for the Figure 2 point-2/point-4 campaigns.
core::Scenario turnin_hardened_scenario();

}  // namespace ep::apps
