// The standard spec-compilation environment: maps the image and service-
// handler names scenario specs reference to the code that implements
// them. One shared environment covers every packaged scenario, the
// redzone demo, and the generated families, so a spec serialized from
// any of them recompiles identically in any process (workers included).
#pragma once

#include "core/scenario_spec.hpp"

namespace ep::apps {

const core::SpecEnvironment& spec_environment();

}  // namespace ep::apps
