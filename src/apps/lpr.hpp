// The Section 3.4 example: the BSD lpr spool-file flaw.
//
// lpr is set-uid root. It creates a temporary spool file with create()
// and writes the job into it, assuming the file did not exist before the
// creation (or that it belongs to the invoker). Perturbing the file's
// existence, ownership, permission, or symbolic-link attribute before the
// create makes lpr write, with root privilege, to a file the invoking
// user could not touch — when the file is a link to /etc/passwd, lpr
// rewrites the password file.
#pragma once

#include "core/campaign.hpp"
#include "core/scenario_spec.hpp"
#include "os/kernel.hpp"

namespace ep::apps {

/// The lpr program image (unit "lpr.c").
int lpr_main(os::Kernel& k, os::Pid pid);

/// Site tags (stable ids used by scenarios, benches, and tests).
inline constexpr const char* kLprCreateTag = "create-tempfile";
inline constexpr const char* kLprWriteTag = "write-tempfile";

/// The deterministic spool path lpr uses.
inline constexpr const char* kLprSpoolFile = "/var/spool/lpd/tfA123";

/// The Section 3.4 scenario: world (spool dir, users, set-uid lpr),
/// test case (alice prints a job), policy (spool dir is the sanctioned
/// output root), and the fault lists of the walkthrough — four attribute
/// perturbations at the create interaction point, with content/name
/// invariance and working-directory marked not-applicable exactly as the
/// paper argues.
/// The declarative spec lpr_scenario() compiles.
core::ScenarioSpec lpr_spec();

core::Scenario lpr_scenario();

}  // namespace ep::apps
