#include "apps/redzone_demo.hpp"

#include "apps/fixed_buffer.hpp"
#include "apps/spec_env.hpp"

namespace ep::apps {

using os::Site;

namespace {

const Site kGetBanner{"banner.c", 12, kBannerGetEnv};
const Site kCopy{"banner.c", 14, kBannerCopy};
const Site kSay{"banner.c", 16, "banner-status"};

}  // namespace

int banner_main(os::Kernel& k, os::Pid pid) {
  // The banner text is taken from the environment as-is — the assumption
  // under test is that nobody hands the login banner a novel.
  std::string text = k.getenv(kGetBanner, pid, "BANNER").value_or("welcome");
  FixedBuffer line(k, pid, kCopy, kBannerCapacity);
  line.copy_wild(text);
  k.output(kSay, pid, "banner: " + line.str());
  return 0;
}

core::ScenarioSpec redzone_demo_spec() {
  namespace sb = core::spec_builders;
  core::ScenarioSpec s;
  s.name = "redzone-demo";
  s.description =
      "banner printer wild-copying an environment string into a fixed "
      "buffer (redzone oracle demo)";
  s.trace_unit_filter = "banner.c";
  sb::add_alice(s);
  // Mallory exists but has no staging directory: the demo perturbs only
  // the environment string.
  s.users.push_back({666, "mallory", 666});
  s.images = {"banner"};
  s.world.push_back(sb::program_op("/usr/bin/banner", "banner", os::kRootUid,
                                   os::kRootGid, 0755 | os::kSetUidBit));
  s.run.push_back({"/usr/bin/banner",
                   {"banner"},
                   1000,
                   1000,
                   {{"BANNER", "greetings"}},
                   "/home"});
  s.policy.secret_files = {"/etc/shadow"};
  // One point, one fault: the plan is exactly the change-length item, so
  // the scenario's exit code under `epa_cli run` is a stable regression
  // signal (exit 3: the wild copy is exploitable by the invoking user).
  core::SiteSpec getenv_spec;
  getenv_spec.faults = {"change-length"};
  s.sites.emplace_back(kBannerGetEnv, getenv_spec);
  return s;
}

core::Scenario redzone_demo_scenario() {
  return core::compile_spec(redzone_demo_spec(), spec_environment());
}

}  // namespace ep::apps
