#include "apps/redzone_demo.hpp"

#include "apps/fixed_buffer.hpp"
#include "os/world.hpp"

namespace ep::apps {

using os::Site;

namespace {

const Site kGetBanner{"banner.c", 12, kBannerGetEnv};
const Site kCopy{"banner.c", 14, kBannerCopy};
const Site kSay{"banner.c", 16, "banner-status"};

}  // namespace

int banner_main(os::Kernel& k, os::Pid pid) {
  // The banner text is taken from the environment as-is — the assumption
  // under test is that nobody hands the login banner a novel.
  std::string text = k.getenv(kGetBanner, pid, "BANNER").value_or("welcome");
  FixedBuffer line(k, pid, kCopy, kBannerCapacity);
  line.copy_wild(text);
  k.output(kSay, pid, "banner: " + line.str());
  return 0;
}

core::Scenario redzone_demo_scenario() {
  core::Scenario s;
  s.name = "redzone-demo";
  s.description =
      "banner printer wild-copying an environment string into a fixed "
      "buffer (redzone oracle demo)";
  s.trace_unit_filter = "banner.c";
  s.snapshot_safe = true;
  s.build = [] {
    auto w = std::make_unique<core::TargetWorld>();
    os::Kernel& k = w->kernel;
    os::world::standard_unix(k);
    k.add_user(1000, "alice", 1000);
    k.add_user(666, "mallory", 666);
    k.register_image("banner", banner_main);
    os::world::put_program(k, "/usr/bin/banner", "banner", os::kRootUid,
                           os::kRootGid, 0755 | os::kSetUidBit);
    return w;
  };
  s.run = [](core::TargetWorld& w) {
    auto r = w.kernel.spawn("/usr/bin/banner", {"banner"}, 1000, 1000,
                            {{"BANNER", "greetings"}}, "/home");
    return r.ok() ? r.value() : 255;
  };
  s.policy.secret_files = {"/etc/shadow"};
  s.hints.attacker_uid = 666;
  s.hints.attacker_gid = 666;
  // One point, one fault: the plan is exactly the change-length item, so
  // the scenario's exit code under `epa_cli run` is a stable regression
  // signal (exit 3: the wild copy is exploitable by the invoking user).
  core::SiteSpec getenv_spec;
  getenv_spec.faults = {"change-length"};
  s.sites[kBannerGetEnv] = getenv_spec;
  return s;
}

}  // namespace ep::apps
