#include "os/path.hpp"

#include "util/strings.hpp"

namespace ep::os::path {

bool is_absolute(std::string_view p) { return !p.empty() && p[0] == '/'; }

std::vector<std::string> components(std::string_view p) {
  return ep::split_nonempty(p, '/');
}

std::string join(std::string_view base, std::string_view rel) {
  if (is_absolute(rel) || base.empty()) return std::string(rel);
  if (rel.empty()) return std::string(base);
  std::string out(base);
  if (out.back() != '/') out += '/';
  out += rel;
  return out;
}

std::string normalize(std::string_view p) {
  const bool abs = is_absolute(p);
  std::vector<std::string> out;
  for (auto& c : components(p)) {
    if (c == ".") continue;
    if (c == "..") {
      if (!out.empty() && out.back() != "..") {
        out.pop_back();
      } else if (!abs) {
        out.push_back("..");  // relative paths keep leading ".."
      }
      // ".." at the root of an absolute path is dropped, as the kernel does
      continue;
    }
    out.push_back(std::move(c));
  }
  std::string joined = ep::join(out, "/");
  if (abs) return "/" + joined;
  return joined.empty() ? "." : joined;
}

std::string absolutize(std::string_view p, std::string_view cwd) {
  if (is_absolute(p)) return normalize(p);
  return normalize(join(cwd, p));
}

std::string basename(std::string_view p) {
  auto parts = components(p);
  if (parts.empty()) return is_absolute(p) ? "/" : ".";
  return parts.back();
}

std::string dirname(std::string_view p) {
  auto parts = components(p);
  if (parts.size() <= 1) return is_absolute(p) ? "/" : ".";
  parts.pop_back();
  std::string joined = ep::join(parts, "/");
  return is_absolute(p) ? "/" + joined : joined;
}

bool is_under(std::string_view p, std::string_view root) {
  if (root == "/") return is_absolute(p);
  if (p == root) return true;
  return p.size() > root.size() && ep::starts_with(p, root) &&
         p[root.size()] == '/';
}

}  // namespace ep::os::path
