// The simulated kernel: processes + VFS + syscall layer + hook chain.
//
// Every syscall takes a Site (the call-site id in the target program) and
// flows through the interposer chain (see hooks.hpp). Permission checks
// use the calling process's *effective* uid, set-uid exec raises
// privilege, and access(2) checks the *real* uid — the exact semantics the
// paper's vulnerabilities (lpr, turnin) depend on.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "os/hooks.hpp"
#include "os/process.hpp"
#include "os/types.hpp"
#include "os/vfs.hpp"
#include "util/result.hpp"

namespace ep::net {
class Network;
}
namespace ep::reg {
class Registry;
}

namespace ep::os {

/// Thrown by application images to simulate an abnormal termination
/// (SIGSEGV after a wild copy, abort, ...). Caught by the kernel's exec
/// machinery and converted into a crashed process + exit code.
struct AppCrash {
  int code = 139;
  std::string reason;
};

/// A registered program body. The simulated equivalent of an on-disk
/// executable: binaries in the VFS name an image (Inode::image); exec
/// looks the image up and runs it in the context of the child process.
using AppImage = std::function<int(Kernel&, Pid)>;

class Kernel {
 public:
  Kernel();

  /// Copying a kernel is the world-snapshot operation: the VFS copy
  /// shares inodes copy-on-write (see vfs.hpp), users/images/processes
  /// are value-copied, and the RunOnlyState sub-struct (interposer
  /// chain, substrate back-pointers) deliberately copies to fresh —
  /// hooks (injector, oracle, recorder) are per-run state, and sharing
  /// live hook objects across runs would couple them. Default-generated
  /// so a member added to Kernel later is copied by construction.
  Kernel(const Kernel& other) = default;
  Kernel& operator=(const Kernel&) = delete;

  Vfs& vfs() { return vfs_; }
  const Vfs& vfs() const { return vfs_; }

  // --- sibling substrates --------------------------------------------------
  /// Wired by TargetWorld to its own network/registry (and re-wired on
  /// every clone). App images must reach the substrates through these
  /// instead of capturing pointers at build time: a captured pointer
  /// would still aim at the prototype's substrate after a clone, leaking
  /// one run's perturbations into another world. Null for standalone
  /// kernels (unit tests, micro-benches).
  void attach_substrates(net::Network* network, reg::Registry* registry) {
    run_.net = network;
    run_.reg = registry;
  }
  [[nodiscard]] net::Network* network() const { return run_.net; }
  [[nodiscard]] reg::Registry* registry() const { return run_.reg; }

  // --- users ---------------------------------------------------------------
  void add_user(Uid uid, std::string name, Gid gid);
  [[nodiscard]] std::string user_name(Uid uid) const;
  [[nodiscard]] const std::map<Uid, std::pair<std::string, Gid>>& users()
      const {
    return users_;
  }

  // --- images --------------------------------------------------------------
  void register_image(const std::string& name, AppImage image);
  [[nodiscard]] bool has_image(const std::string& name) const;

  // --- processes -----------------------------------------------------------
  /// Create a bare process (scenario setup / tests). Not hooked.
  Pid make_process(Uid ruid, Gid rgid, std::string cwd = "/",
                   std::map<std::string, std::string> env = {});
  [[nodiscard]] Process& proc(Pid pid);
  [[nodiscard]] const Process& proc(Pid pid) const;
  [[nodiscard]] bool has_proc(Pid pid) const;

  /// Run the program installed at exe_path as user `ruid` (the paper's
  /// "user invokes the application"): resolves the binary, applies set-uid
  /// semantics, runs the image synchronously, returns its exit code.
  SysResult<int> spawn(const std::string& exe_path,
                       std::vector<std::string> args, Uid ruid, Gid rgid,
                       std::map<std::string, std::string> env = {},
                       std::string cwd = "/");

  /// exec from inside a process: `command` with no '/' is searched along
  /// the process's $PATH (the interaction the PATH perturbations target).
  SysResult<int> exec(const Site& site, Pid pid, const std::string& command,
                      std::vector<std::string> args);

  /// fexecve-style exec through an already-open descriptor: path-based
  /// perturbations between check and exec cannot bite (used by hardened
  /// programs to close the TOCTTOU window).
  SysResult<int> fexec(const Site& site, Pid pid, Fd fd,
                       std::vector<std::string> args);

  // --- file syscalls ---------------------------------------------------
  SysResult<Fd> open(const Site& site, Pid pid, const std::string& path,
                     OpenFlags flags, unsigned create_mode = 0666);
  SysStatus close(Pid pid, Fd fd);
  /// Read up to n bytes from the descriptor (default: to EOF).
  SysResult<std::string> read(const Site& site, Pid pid, Fd fd,
                              std::size_t n = std::string::npos);
  /// Read one '\n'-terminated line (newline consumed, not returned);
  /// Err::io at EOF.
  SysResult<std::string> read_line(const Site& site, Pid pid, Fd fd);
  SysResult<std::size_t> write(const Site& site, Pid pid, Fd fd,
                               std::string_view data);
  SysResult<StatInfo> stat(const Site& site, Pid pid, const std::string& path);
  SysResult<StatInfo> lstat(const Site& site, Pid pid,
                            const std::string& path);
  /// fstat carries no environment interaction (the inode is pinned), so it
  /// is not hooked — which is exactly why fd-based re-checks are immune to
  /// perturbation.
  SysResult<StatInfo> fstat(Pid pid, Fd fd);
  /// access(2): checks with the *real* uid.
  SysStatus access(const Site& site, Pid pid, const std::string& path,
                   Perm perm);
  SysStatus mkdir(const Site& site, Pid pid, const std::string& path,
                  unsigned mode = 0777);
  SysStatus rmdir(const Site& site, Pid pid, const std::string& path);
  SysStatus unlink(const Site& site, Pid pid, const std::string& path);
  SysStatus rename(const Site& site, Pid pid, const std::string& from,
                   const std::string& to);
  SysStatus symlink(const Site& site, Pid pid, const std::string& target,
                    const std::string& linkpath);
  SysResult<std::string> readlink(const Site& site, Pid pid,
                                  const std::string& path);
  SysResult<std::vector<std::string>> readdir(const Site& site, Pid pid,
                                              const std::string& path);
  SysStatus chmod(const Site& site, Pid pid, const std::string& path,
                  unsigned mode);
  SysStatus chown(const Site& site, Pid pid, const std::string& path, Uid uid,
                  Gid gid);
  SysStatus chdir(const Site& site, Pid pid, const std::string& path);
  [[nodiscard]] std::string getcwd(Pid pid) const;

  // --- input/output pseudo-syscalls -------------------------------------
  /// Environment-variable input (indirect fault category 2).
  SysResult<std::string> getenv(const Site& site, Pid pid,
                                const std::string& name);
  /// Command-line input (indirect fault category 1). Returns "" past argc.
  std::string arg(const Site& site, Pid pid, std::size_t idx);
  [[nodiscard]] std::size_t argc(Pid pid) const;
  /// Program output; what the confidentiality policy watches.
  void output(const Site& site, Pid pid, std::string_view text);
  /// Application-level fault report (buffer overflow, crash, ...).
  void app_fault(const Site& site, Pid pid, AppFault kind,
                 const std::string& detail);
  /// The program is about to perform its security-critical effect (grant a
  /// login, apply an update...). `believes_authorized` is the program's own
  /// belief; the oracle holds it against network/IPC ground truth.
  void privileged_action(const Site& site, Pid pid, const std::string& what,
                         bool believes_authorized);

  // --- redzone memory oracle (see os/redzone.hpp, docs/ORACLES.md) -----
  /// Master switch (`epa_cli --no-redzone` turns it off). A plain value
  /// member, so snapshots copy it; the executor (re)sets it per run.
  void set_redzone_audit(bool on) { redzone_audit_ = on; }
  [[nodiscard]] bool redzone_audit() const { return redzone_audit_; }

  /// Track a live app-side guard region (apps/fixed_buffer.hpp registers
  /// in its constructor). `zone` must stay valid until the matching
  /// unregister. Guards are per-run state: they live in RunOnlyState and
  /// never survive a world snapshot.
  void register_redzone_guard(const Site& site, Pid pid, std::string label,
                              const std::string* zone);
  /// Validate and drop a guard (buffer destruction — the app-buffer
  /// equivalent of the teardown sweep). Reports redzone_corruption at the
  /// buffer's registration site if the poison was overwritten.
  void unregister_redzone_guard(const std::string* zone);

  /// Deterministic end-of-run sweep: every still-registered guard in
  /// registration order, then every VFS inode redzone in ino order.
  /// Registry value redzones are swept by reg::Registry::
  /// validate_redzones(), driven alongside this from
  /// core::TargetWorld::validate_redzones().
  void validate_redzones();

  /// Route a corrupted-guard finding through the hook chain as an
  /// app_fault with `aux = "redzone_corruption"` and the corrupted
  /// object's identity in ctx.path (the oracle's dedup key needs the
  /// object; plain app_fault() leaves path empty). Public so sibling
  /// substrates (registry) report through the same seam. Reported once
  /// per object per run; no-op while the audit is off.
  void report_redzone_corruption(const Site& site, Pid pid,
                                 const std::string& object,
                                 std::string_view zone);

  // --- hook chain ------------------------------------------------------
  void add_interposer(std::shared_ptr<Interposer> hook);
  void clear_interposers();
  [[nodiscard]] std::size_t interposer_count() const {
    return run_.hooks.size();
  }
  /// Exposed so sibling substrates (network, registry) can route their
  /// interactions through the same chain.
  void dispatch_before(SyscallCtx& ctx);
  void dispatch_after(SyscallCtx& ctx, Err result);

  // --- queries used by perturbers and the oracle ----------------------
  /// Would (uid,gid) pass `perm` on the object at canonical path `p`?
  /// Resolution runs with root privilege so the answer reflects the object
  /// itself, not search permissions along the way.
  [[nodiscard]] bool uid_can(Uid uid, Gid gid, const std::string& p,
                             Perm perm) const;
  /// Read a file's content with root privilege (oracle/test helper).
  [[nodiscard]] SysResult<std::string> peek(const std::string& p) const;
  /// All process output concatenated in spawn order (examples/demos).
  [[nodiscard]] std::string console() const { return console_; }

 private:
  struct ExecTarget {
    Ino ino = kNoIno;
    std::string canonical;
  };
  SysResult<int> run_image(const Site& site, Pid parent, ExecTarget target,
                           std::vector<std::string> args,
                           const std::string& invoked_as);
  SysResult<ExecTarget> resolve_exec_target(const Process& p,
                                            const std::string& command);
  /// Fill ctx.canonical/object/object_untrusted from a resolved inode.
  void describe_object(SyscallCtx& ctx, Ino ino) const;
  [[nodiscard]] bool ancestor_untrusted(Ino ino) const;
  /// Inline guard check on a file syscall path: report if this inode's
  /// redzone is no longer intact.
  void check_inode_redzone(const Site& site, Pid pid, Ino ino);

  /// Per-run, never-snapshot state: the interposer chain and the
  /// substrate back-pointers. Its copy constructor is a deliberate no-op
  /// (fresh chain, unwired substrates — the owning TargetWorld re-wires),
  /// which is what lets Kernel's copy constructor stay defaulted.
  struct RunOnlyState {
    std::vector<std::shared_ptr<Interposer>> hooks;
    net::Network* net = nullptr;
    reg::Registry* reg = nullptr;

    /// Live app-buffer guards, in registration order (the teardown
    /// sweep's iteration order). Per-run like the hook chain: a snapshot
    /// must not inherit pointers into another run's stack frames.
    struct RedzoneGuard {
      Site site;
      Pid pid = -1;
      std::string label;
      const std::string* zone = nullptr;
    };
    std::vector<RedzoneGuard> redzone_guards;
    /// Objects already reported corrupted this run — one violation per
    /// region no matter how many syscalls touch it afterwards.
    std::set<std::string> redzone_reported;

    RunOnlyState() = default;
    RunOnlyState(const RunOnlyState& /*other*/) {}
    RunOnlyState& operator=(const RunOnlyState&) = delete;
  };

  Vfs vfs_;
  std::map<Pid, Process> procs_;
  std::map<Uid, std::pair<std::string, Gid>> users_;
  std::map<std::string, AppImage> images_;
  RunOnlyState run_;
  Pid next_pid_ = 1;
  std::string console_;
  int exec_depth_ = 0;
  bool redzone_audit_ = true;
};

}  // namespace ep::os
