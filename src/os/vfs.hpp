// Virtual file system: the environment entity store.
//
// Everything Table 6 perturbs about the file system is first-class state
// here: existence (the namespace), ownership (uid/gid), permission (mode
// bits), symbolic links (link inodes with targets), content and name
// invariance (data and directory entries), plus a `trusted` attribute used
// by the entity-trustability perturbation.
//
// Vfs is deliberately policy-free: it implements mechanism (resolution,
// entries, permission *predicates*) and leaves enforcement to the Kernel,
// which knows the calling process's credentials. This lets perturbers and
// the oracle query "could uid U write inode I?" without a process.
//
// Copy-on-write: inodes are held through shared_ptr, so copying a Vfs
// copies only the maps — every node is *shared* with the original. All
// mutation goes through mutate(), which unshares a node the first time a
// given Vfs writes it. That makes Vfs copies cheap world snapshots (see
// core/snapshot.hpp): a frozen prototype built once can be cloned per
// injection run, and a run's perturbations only ever touch that run's
// private copies. Sharing is thread-safe as long as the prototype is
// never mutated while clones exist: clones on different threads only read
// shared nodes (unsharing copies from them) and only write nodes they
// alone own — use_count()==1 proves sole ownership because no other
// thread can hold a reference into this Vfs's maps.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "os/path.hpp"
#include "os/redzone.hpp"
#include "os/types.hpp"
#include "util/result.hpp"

namespace ep::os {

enum class FileType { regular, directory, symlink };

struct Inode {
  Ino ino = kNoIno;
  FileType type = FileType::regular;
  Uid uid = kRootUid;
  Gid gid = kRootGid;
  unsigned mode = 0644;  // permission bits + kSetUidBit
  /// Regular files: data. Symlinks: link target path.
  std::string content;
  /// Directories: name -> child inode.
  std::map<std::string, Ino> entries;
  /// Name of the registered application image this file executes as, empty
  /// for plain data files. The simulated equivalent of an ELF header.
  std::string image;
  /// Entity-trustability attribute (Table 6): perturbations may mark an
  /// entity as originating from an untrusted subject.
  bool trusted = true;
  /// Poisoned guard region conceptually adjacent to `content`. Legitimate
  /// writes replace content wholesale and never touch it; the Kernel
  /// checks it on read/write and at run teardown (see os/redzone.hpp).
  /// Copied verbatim by mutate()'s unsharing copy, so poison — and any
  /// corruption — survives COW cloning.
  std::string redzone = redzone::poison();

  [[nodiscard]] bool is_dir() const { return type == FileType::directory; }
  [[nodiscard]] bool is_symlink() const { return type == FileType::symlink; }
  [[nodiscard]] bool is_regular() const { return type == FileType::regular; }
  [[nodiscard]] bool setuid() const { return (mode & kSetUidBit) != 0; }
};

/// Result of resolving a path down to (but not through) its final
/// component: the directory that holds the leaf, the leaf name, and the
/// leaf inode if it exists.
struct ResolvedParent {
  Ino dir_ino = kNoIno;
  std::string leaf;
  Ino leaf_ino = kNoIno;  // kNoIno if the leaf does not exist
  /// Canonical absolute path of dir + leaf (symlinks in the *directory*
  /// part resolved; the leaf itself is not followed).
  std::string canonical;
};

struct StatInfo {
  Ino ino = kNoIno;
  FileType type = FileType::regular;
  Uid uid = kRootUid;
  Gid gid = kRootGid;
  unsigned mode = 0;
  std::size_t size = 0;
  bool trusted = true;

  [[nodiscard]] bool setuid() const { return (mode & kSetUidBit) != 0; }
};

class Vfs {
 public:
  Vfs();

  // --- inode access -------------------------------------------------------
  [[nodiscard]] Ino root() const { return root_; }
  [[nodiscard]] bool exists(Ino ino) const { return inodes_.count(ino) != 0; }
  /// Precondition: exists(ino). Throws std::out_of_range otherwise.
  /// The returned reference may go stale for *this* Vfs if the node is
  /// later mutate()d while still shared with a copy; re-fetch after any
  /// call that can mutate (in the kernel: after dispatching hooks).
  [[nodiscard]] const Inode& inode(Ino ino) const { return *inodes_.at(ino); }
  /// Writable access with copy-on-write: unshares the node if any Vfs
  /// copy still shares it, so the write never leaks into the prototype or
  /// sibling clones. Precondition: exists(ino).
  [[nodiscard]] Inode& mutate(Ino ino);
  /// True when the node is still shared with another Vfs copy (test/debug
  /// introspection for the snapshot layer).
  [[nodiscard]] bool shares_node(Ino ino) const {
    auto it = inodes_.find(ino);
    return it != inodes_.end() && it->second.use_count() > 1;
  }

  // --- permission predicates (mechanism only; root bypass is Kernel policy)
  /// Would credentials (uid, gid) pass the rwx check on `node`?
  /// No root bypass here: the caller decides whether uid 0 is special.
  [[nodiscard]] static bool permits(const Inode& node, Uid uid, Gid gid,
                                    Perm perm);
  /// Convenience with the kernel's rule: uid 0 passes read/write always and
  /// exec if any x bit is set.
  [[nodiscard]] static bool permits_with_root(const Inode& node, Uid uid,
                                              Gid gid, Perm perm);

  // --- resolution ----------------------------------------------------------
  /// Full resolution: follow directories and symlinks (including a final
  /// symlink when follow_final is true). Path may be relative to cwd.
  /// Errors: noent, notdir, loop, acces (missing search permission; the
  /// credential pair is used with the root bypass), nametoolong.
  [[nodiscard]] SysResult<Ino> resolve(std::string_view p,
                                       std::string_view cwd, Uid uid, Gid gid,
                                       bool follow_final = true) const;

  /// Resolve the parent directory of p; the final component is looked up
  /// but never followed. Used by open(O_CREAT), unlink, symlink, rename.
  [[nodiscard]] SysResult<ResolvedParent> resolve_parent(std::string_view p,
                                                         std::string_view cwd,
                                                         Uid uid,
                                                         Gid gid) const;

  /// Canonical absolute path of an existing inode (walks parent links).
  /// Directories only know their children, so Vfs maintains a parent map.
  [[nodiscard]] std::string canonical_path(Ino ino) const;

  /// Resolve fully and return the canonical path, following symlinks.
  [[nodiscard]] SysResult<std::string> canonicalize(std::string_view p,
                                                    std::string_view cwd,
                                                    Uid uid, Gid gid) const;

  // --- namespace mutation (no permission checks; Kernel enforces) ---------
  /// Create a regular file in directory `dir` under `name`.
  SysResult<Ino> create_file(Ino dir, const std::string& name, Uid uid,
                             Gid gid, unsigned mode, std::string content = {});
  SysResult<Ino> create_dir(Ino dir, const std::string& name, Uid uid, Gid gid,
                            unsigned mode);
  SysResult<Ino> create_symlink(Ino dir, const std::string& name, Uid uid,
                                Gid gid, std::string target);
  /// Remove `name` from `dir`; the inode is freed when unreferenced.
  /// Errors: noent, isdir (use remove_dir), notempty.
  SysStatus remove(Ino dir, const std::string& name);
  SysStatus remove_dir(Ino dir, const std::string& name);
  /// Rename within or across directories.
  SysStatus rename_entry(Ino src_dir, const std::string& src_name, Ino dst_dir,
                         const std::string& dst_name);
  /// Unconditionally detach an entry (file, symlink, or whole directory
  /// subtree). The experimenter's hand: perturbers use this to replace
  /// objects regardless of type; the detached subtree stays allocated.
  void detach(Ino dir, const std::string& name);

  /// Simulate a write that runs `overflow` bytes past the end of the
  /// node's content: silently clobbers the leading min(overflow,
  /// redzone::kSize) bytes of the node's guard region with `fill`.
  /// Goes through mutate(), so the corruption stays private to this Vfs
  /// copy. This is the injection half of the redzone oracle — nothing
  /// reports here; detection happens in the Kernel's checks.
  void wild_write(Ino ino, std::size_t overflow, char fill = '!');

  /// Inos of all live inodes, sorted — the deterministic iteration order
  /// for the Kernel's teardown redzone sweep.
  [[nodiscard]] std::vector<Ino> all_inos_sorted() const;

  [[nodiscard]] SysResult<StatInfo> stat_inode(Ino ino) const;

  /// All canonical paths currently reachable from the root, sorted; handy
  /// for invariant checks and test assertions.
  [[nodiscard]] std::vector<std::string> list_all_paths() const;

  /// Structural invariants: every entry points at a live inode, every live
  /// non-root inode has exactly one parent, parent map matches entries.
  /// Returns a description of the first violation, or empty if consistent.
  [[nodiscard]] std::string check_invariants() const;

 private:
  Ino alloc(FileType type, Uid uid, Gid gid, unsigned mode);

  /// Nodes are shared across Vfs copies until first write (see mutate()).
  /// A side effect worth knowing: map rehashing moves only the pointers,
  /// so inode references stay valid across alloc().
  std::unordered_map<Ino, std::shared_ptr<Inode>> inodes_;
  std::unordered_map<Ino, Ino> parent_;          // child -> containing dir
  std::unordered_map<Ino, std::string> name_in_parent_;
  Ino root_ = kNoIno;
  Ino next_ino_ = 1;
};

}  // namespace ep::os
