#include "os/world.hpp"

#include <stdexcept>

#include "os/path.hpp"

namespace ep::os::world {

namespace {

/// Resolve an existing directory as root or die: world-building errors are
/// scenario bugs, not runtime conditions.
Ino need_dir(Kernel& k, const std::string& p) {
  auto r = k.vfs().resolve(p, "/", kRootUid, kRootGid);
  if (!r.ok()) throw std::logic_error("world: missing directory " + p);
  if (!k.vfs().inode(r.value()).is_dir())
    throw std::logic_error("world: not a directory: " + p);
  return r.value();
}

}  // namespace

Ino mkdirs(Kernel& k, const std::string& p, Uid uid, Gid gid, unsigned mode) {
  Ino cur = k.vfs().root();
  std::string sofar = "/";
  for (const auto& comp : path::components(path::normalize(p))) {
    const Inode& dir = k.vfs().inode(cur);
    auto it = dir.entries.find(comp);
    if (it != dir.entries.end()) {
      Ino next = it->second;
      if (!k.vfs().inode(next).is_dir())
        throw std::logic_error("world: component is not a directory: " +
                               sofar + comp);
      cur = next;
    } else {
      auto made = k.vfs().create_dir(cur, comp, uid, gid, mode);
      if (!made.ok())
        throw std::logic_error("world: cannot create " + sofar + comp);
      cur = made.value();
    }
    sofar += comp + "/";
  }
  return cur;
}

Ino put_file(Kernel& k, const std::string& p, std::string content, Uid uid,
             Gid gid, unsigned mode) {
  std::string dir = path::dirname(path::normalize(p));
  std::string leaf = path::basename(path::normalize(p));
  Ino dino = dir == "/" ? k.vfs().root() : mkdirs(k, dir);
  const Inode& d = k.vfs().inode(dino);
  auto it = d.entries.find(leaf);
  if (it != d.entries.end()) {
    Inode& existing = k.vfs().mutate(it->second);
    existing.content = std::move(content);
    existing.uid = uid;
    existing.gid = gid;
    existing.mode = mode;
    return it->second;
  }
  auto made = k.vfs().create_file(dino, leaf, uid, gid, mode,
                                  std::move(content));
  if (!made.ok()) throw std::logic_error("world: cannot create file " + p);
  return made.value();
}

Ino put_symlink(Kernel& k, const std::string& linkpath, std::string target,
                Uid uid, Gid gid) {
  std::string dir = path::dirname(path::normalize(linkpath));
  std::string leaf = path::basename(path::normalize(linkpath));
  Ino dino = dir == "/" ? k.vfs().root() : mkdirs(k, dir);
  force_remove(k, linkpath);
  auto made = k.vfs().create_symlink(dino, leaf, uid, gid, std::move(target));
  if (!made.ok())
    throw std::logic_error("world: cannot create symlink " + linkpath);
  return made.value();
}

Ino put_program(Kernel& k, const std::string& p, const std::string& image,
                Uid uid, Gid gid, unsigned mode) {
  Ino ino = put_file(k, p, "#!image " + image + "\n", uid, gid, mode);
  k.vfs().mutate(ino).image = image;
  return ino;
}

void force_remove(Kernel& k, const std::string& p) {
  std::string dir = path::dirname(path::normalize(p));
  std::string leaf = path::basename(path::normalize(p));
  auto r = k.vfs().resolve(dir, "/", kRootUid, kRootGid);
  if (!r.ok()) return;
  Ino dino = r.value();
  const Inode& d = k.vfs().inode(dino);
  auto it = d.entries.find(leaf);
  if (it == d.entries.end()) return;
  if (k.vfs().inode(it->second).is_dir())
    (void)k.vfs().remove_dir(dino, leaf);
  else
    (void)k.vfs().remove(dino, leaf);
}

void standard_unix(Kernel& k) {
  mkdirs(k, "/etc");
  mkdirs(k, "/bin");
  mkdirs(k, "/usr/bin");
  mkdirs(k, "/usr/local/lib");
  mkdirs(k, "/home");
  mkdirs(k, "/var/spool");
  // /tmp is world-writable; the staging ground for most of the classic
  // attacks the perturbations emulate.
  mkdirs(k, "/tmp", kRootUid, kRootGid, 0777);
  put_file(k, "/etc/passwd", kPasswdContent, kRootUid, kRootGid, 0644);
  put_file(k, "/etc/shadow", kShadowContent, kRootUid, kRootGid, 0600);
  (void)need_dir(k, "/etc");
}

}  // namespace ep::os::world
