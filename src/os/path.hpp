// Path manipulation for the simulated file system.
//
// Paths are UNIX-style strings. Lexical normalization here never touches
// the file system; symlink-aware resolution lives in Vfs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ep::os::path {

/// True if p starts with '/'.
bool is_absolute(std::string_view p);

/// Split into components, dropping empty ones ("/a//b" -> {"a","b"}).
std::vector<std::string> components(std::string_view p);

/// Join two paths; if `rel` is absolute it wins.
std::string join(std::string_view base, std::string_view rel);

/// Lexically normalize: collapse "//" and "." and apply ".." against named
/// components ("/a/b/../c" -> "/a/c"; ".." at the root is dropped).
/// Relative inputs are normalized relative ("a/../b" -> "b").
std::string normalize(std::string_view p);

/// Make p absolute against cwd, then normalize.
std::string absolutize(std::string_view p, std::string_view cwd);

/// Final component ("/a/b" -> "b", "/" -> "/").
std::string basename(std::string_view p);

/// Everything before the final component ("/a/b" -> "/a", "b" -> ".").
std::string dirname(std::string_view p);

/// True if `p` is lexically inside `root` (or equal). Both must be
/// normalized absolute paths.
bool is_under(std::string_view p, std::string_view root);

}  // namespace ep::os::path
