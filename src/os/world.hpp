// World building: root-privileged helpers for constructing the initial
// environment of a scenario (directories, files, programs, users).
//
// These operate directly on the Vfs with root credentials and never touch
// the hook chain — the world builder is the experimenter, not the program
// under test. Campaign runs rebuild the world from scratch through these
// helpers, which is what makes injection runs independent.
#pragma once

#include <string>

#include "os/kernel.hpp"

namespace ep::os::world {

/// mkdir -p: create every missing component as root. Returns the final
/// directory's inode. Throws std::logic_error if a component exists as a
/// non-directory (a broken scenario is a programming error).
Ino mkdirs(Kernel& k, const std::string& path, Uid uid = kRootUid,
           Gid gid = kRootGid, unsigned mode = 0755);

/// Install (or overwrite) a regular file, creating parent directories.
Ino put_file(Kernel& k, const std::string& path, std::string content,
             Uid uid = kRootUid, Gid gid = kRootGid, unsigned mode = 0644);

/// Install a symlink (parents created as root/0755).
Ino put_symlink(Kernel& k, const std::string& linkpath, std::string target,
                Uid uid = kRootUid, Gid gid = kRootGid);

/// Install an executable backed by a registered image name.
/// mode may include kSetUidBit for set-uid programs.
Ino put_program(Kernel& k, const std::string& path, const std::string& image,
                Uid uid = kRootUid, Gid gid = kRootGid, unsigned mode = 0755);

/// Remove a path if present (root privilege), for perturbers and tests.
void force_remove(Kernel& k, const std::string& path);

/// Standard skeleton: /etc (incl. passwd + shadow with secret content),
/// /bin, /usr/bin, /usr/local/lib, /tmp (world-writable), /home, /var.
void standard_unix(Kernel& k);

/// Content markers used by standard_unix for the classic victim files, so
/// tests and the oracle can recognize leaked or clobbered secrets.
inline constexpr const char* kShadowContent =
    "root:$1$SECRET-SHADOW-HASH$:10000:0:99999\n"
    "daemon:*:10000:0:99999\n";
inline constexpr const char* kPasswdContent =
    "root:x:0:0:root:/:/bin/sh\n"
    "daemon:x:1:1:daemon:/:/bin/false\n";

}  // namespace ep::os::world
