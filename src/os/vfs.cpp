#include "os/vfs.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace ep::os {

Vfs::Vfs() {
  root_ = alloc(FileType::directory, kRootUid, kRootGid, 0755);
}

Ino Vfs::alloc(FileType type, Uid uid, Gid gid, unsigned mode) {
  Ino ino = next_ino_++;
  auto node = std::make_shared<Inode>();
  node->ino = ino;
  node->type = type;
  node->uid = uid;
  node->gid = gid;
  node->mode = mode;
  inodes_.emplace(ino, std::move(node));
  return ino;
}

Inode& Vfs::mutate(Ino ino) {
  std::shared_ptr<Inode>& slot = inodes_.at(ino);
  // use_count()==1 means this Vfs holds the only reference: nothing to
  // unshare, and no other thread can race us (references into this Vfs's
  // maps are confined to the thread that owns the world). A shared node
  // is still alive in the prototype after the swap, so previously taken
  // const references stay valid — they just see the pre-write state.
  if (slot.use_count() > 1) slot = std::make_shared<Inode>(*slot);
  return *slot;
}

void Vfs::wild_write(Ino ino, std::size_t overflow, char fill) {
  Inode& node = mutate(ino);
  std::size_t n = std::min(overflow, node.redzone.size());
  for (std::size_t i = 0; i < n; ++i) node.redzone[i] = fill;
}

std::vector<Ino> Vfs::all_inos_sorted() const {
  std::vector<Ino> inos;
  inos.reserve(inodes_.size());
  for (const auto& [ino, node] : inodes_) inos.push_back(ino);
  std::sort(inos.begin(), inos.end());
  return inos;
}

bool Vfs::permits(const Inode& node, Uid uid, Gid gid, Perm perm) {
  unsigned shift = 0;
  if (node.uid == uid) {
    shift = 6;
  } else if (node.gid == gid) {
    shift = 3;
  }
  unsigned bit = 0;
  switch (perm) {
    case Perm::read: bit = 04u << shift; break;
    case Perm::write: bit = 02u << shift; break;
    case Perm::exec: bit = 01u << shift; break;
  }
  return (node.mode & bit) != 0;
}

bool Vfs::permits_with_root(const Inode& node, Uid uid, Gid gid, Perm perm) {
  if (uid == kRootUid) {
    // Root bypasses read/write checks; exec still requires some x bit,
    // matching UNIX semantics.
    if (perm != Perm::exec) return true;
    return (node.mode & (kOwnerExec | kGroupExec | kOtherExec)) != 0;
  }
  return permits(node, uid, gid, perm);
}

SysResult<Ino> Vfs::resolve(std::string_view p, std::string_view cwd, Uid uid,
                            Gid gid, bool follow_final) const {
  if (p.empty()) return Err::noent;
  if (p.size() > kMaxPathLen) return Err::nametoolong;

  std::string abs = path::is_absolute(p) ? std::string(p)
                                         : path::join(cwd, p);
  std::vector<std::string> todo = path::components(abs);
  std::reverse(todo.begin(), todo.end());  // pop from the back

  Ino cur = root_;
  int link_depth = 0;
  while (!todo.empty()) {
    std::string comp = std::move(todo.back());
    todo.pop_back();
    if (comp.size() > kMaxNameLen) return Err::nametoolong;
    if (comp == ".") continue;

    const Inode& dir = inode(cur);
    if (!dir.is_dir()) return Err::notdir;
    if (!permits_with_root(dir, uid, gid, Perm::exec)) return Err::acces;

    if (comp == "..") {
      auto it = parent_.find(cur);
      cur = it == parent_.end() ? root_ : it->second;
      continue;
    }

    auto it = dir.entries.find(comp);
    if (it == dir.entries.end()) return Err::noent;
    Ino next = it->second;
    const Inode& child = inode(next);

    if (child.is_symlink()) {
      const bool is_final = todo.empty();
      if (is_final && !follow_final) {
        cur = next;
        continue;
      }
      if (++link_depth > kMaxSymlinkDepth) return Err::loop;
      // Push the link target's components; absolute targets restart at /.
      std::vector<std::string> tgt = path::components(child.content);
      if (path::is_absolute(child.content)) cur = root_;
      // else: resolution continues from the directory holding the link.
      for (auto rit = tgt.rbegin(); rit != tgt.rend(); ++rit)
        todo.push_back(*rit);
      continue;
    }
    cur = next;
  }
  return cur;
}

SysResult<ResolvedParent> Vfs::resolve_parent(std::string_view p,
                                              std::string_view cwd, Uid uid,
                                              Gid gid) const {
  if (p.empty()) return Err::noent;
  if (p.size() > kMaxPathLen) return Err::nametoolong;

  std::string abs = path::is_absolute(p) ? std::string(p)
                                         : path::join(cwd, p);
  auto comps = path::components(abs);
  if (comps.empty()) return Err::isdir;  // "/" has no parent entry
  std::string leaf = comps.back();
  if (leaf.size() > kMaxNameLen) return Err::nametoolong;
  comps.pop_back();

  Ino dir = root_;
  if (!comps.empty()) {
    std::string dir_path = "/" + ep::join(comps, "/");
    auto r = resolve(dir_path, cwd, uid, gid, /*follow_final=*/true);
    if (!r.ok()) return r.error();
    dir = r.value();
  }
  const Inode& d = inode(dir);
  if (!d.is_dir()) return Err::notdir;
  if (!permits_with_root(d, uid, gid, Perm::exec)) return Err::acces;

  ResolvedParent out;
  out.dir_ino = dir;
  out.leaf = leaf;
  auto it = d.entries.find(leaf);
  out.leaf_ino = it == d.entries.end() ? kNoIno : it->second;
  std::string dir_canon = canonical_path(dir);
  out.canonical = dir_canon == "/" ? "/" + leaf : dir_canon + "/" + leaf;
  return out;
}

std::string Vfs::canonical_path(Ino ino) const {
  if (ino == root_) return "/";
  std::vector<std::string> parts;
  Ino cur = ino;
  while (cur != root_) {
    auto nit = name_in_parent_.find(cur);
    auto pit = parent_.find(cur);
    if (nit == name_in_parent_.end() || pit == parent_.end())
      return "<detached:" + std::to_string(ino) + ">";
    parts.push_back(nit->second);
    cur = pit->second;
  }
  std::reverse(parts.begin(), parts.end());
  return "/" + ep::join(parts, "/");
}

SysResult<std::string> Vfs::canonicalize(std::string_view p,
                                         std::string_view cwd, Uid uid,
                                         Gid gid) const {
  auto r = resolve(p, cwd, uid, gid, /*follow_final=*/true);
  if (!r.ok()) return r.error();
  return canonical_path(r.value());
}

SysResult<Ino> Vfs::create_file(Ino dir, const std::string& name, Uid uid,
                                Gid gid, unsigned mode, std::string content) {
  const Inode& d = inode(dir);
  if (!d.is_dir()) return Err::notdir;
  if (name.empty() || name.size() > kMaxNameLen) return Err::nametoolong;
  if (d.entries.count(name)) return Err::exist;
  Ino ino = alloc(FileType::regular, uid, gid, mode);
  mutate(ino).content = std::move(content);
  mutate(dir).entries.emplace(name, ino);
  parent_[ino] = dir;
  name_in_parent_[ino] = name;
  return ino;
}

SysResult<Ino> Vfs::create_dir(Ino dir, const std::string& name, Uid uid,
                               Gid gid, unsigned mode) {
  const Inode& d = inode(dir);
  if (!d.is_dir()) return Err::notdir;
  if (name.empty() || name.size() > kMaxNameLen) return Err::nametoolong;
  if (d.entries.count(name)) return Err::exist;
  Ino ino = alloc(FileType::directory, uid, gid, mode);
  mutate(dir).entries.emplace(name, ino);
  parent_[ino] = dir;
  name_in_parent_[ino] = name;
  return ino;
}

SysResult<Ino> Vfs::create_symlink(Ino dir, const std::string& name, Uid uid,
                                   Gid gid, std::string target) {
  const Inode& d = inode(dir);
  if (!d.is_dir()) return Err::notdir;
  if (name.empty() || name.size() > kMaxNameLen) return Err::nametoolong;
  if (d.entries.count(name)) return Err::exist;
  Ino ino = alloc(FileType::symlink, uid, gid, 0777);
  mutate(ino).content = std::move(target);
  mutate(dir).entries.emplace(name, ino);
  parent_[ino] = dir;
  name_in_parent_[ino] = name;
  return ino;
}

SysStatus Vfs::remove(Ino dir, const std::string& name) {
  const Inode& d = inode(dir);
  auto it = d.entries.find(name);
  if (it == d.entries.end()) return Err::noent;
  if (inode(it->second).is_dir()) return Err::isdir;
  // The inode is detached, not destroyed: open descriptors keep it alive,
  // which is what makes fd-based (fexecve-style) checks immune to the
  // unlink/recreate perturbation.
  Ino victim = it->second;
  mutate(dir).entries.erase(name);  // by key: `it` dies with the unshare
  parent_.erase(victim);
  name_in_parent_.erase(victim);
  return ok_status();
}

SysStatus Vfs::remove_dir(Ino dir, const std::string& name) {
  const Inode& d = inode(dir);
  auto it = d.entries.find(name);
  if (it == d.entries.end()) return Err::noent;
  const Inode& victim = inode(it->second);
  if (!victim.is_dir()) return Err::notdir;
  if (!victim.entries.empty()) return Err::notempty;
  Ino vino = it->second;
  mutate(dir).entries.erase(name);
  parent_.erase(vino);
  name_in_parent_.erase(vino);
  return ok_status();
}

SysStatus Vfs::rename_entry(Ino src_dir, const std::string& src_name,
                            Ino dst_dir, const std::string& dst_name) {
  const Inode& sd = inode(src_dir);
  auto it = sd.entries.find(src_name);
  if (it == sd.entries.end()) return Err::noent;
  if (dst_name.empty() || dst_name.size() > kMaxNameLen)
    return Err::nametoolong;
  Ino moving = it->second;
  const Inode& dd = inode(dst_dir);
  if (!dd.is_dir()) return Err::notdir;
  // Replace an existing non-directory target, as rename(2) does.
  auto dit = dd.entries.find(dst_name);
  if (dit != dd.entries.end()) {
    if (dit->second == moving) return ok_status();
    if (inode(dit->second).is_dir()) return Err::isdir;
    Ino victim = dit->second;
    mutate(dst_dir).entries.erase(dst_name);
    parent_.erase(victim);
    name_in_parent_.erase(victim);
  }
  mutate(src_dir).entries.erase(src_name);
  mutate(dst_dir).entries.emplace(dst_name, moving);
  parent_[moving] = dst_dir;
  name_in_parent_[moving] = dst_name;
  return ok_status();
}

void Vfs::detach(Ino dir, const std::string& name) {
  const Inode& d = inode(dir);
  auto it = d.entries.find(name);
  if (it == d.entries.end()) return;
  Ino victim = it->second;
  mutate(dir).entries.erase(name);
  parent_.erase(victim);
  name_in_parent_.erase(victim);
}

SysResult<StatInfo> Vfs::stat_inode(Ino ino) const {
  if (!exists(ino)) return Err::noent;
  const Inode& n = inode(ino);
  StatInfo s;
  s.ino = n.ino;
  s.type = n.type;
  s.uid = n.uid;
  s.gid = n.gid;
  s.mode = n.mode;
  s.size = n.content.size();
  s.trusted = n.trusted;
  return s;
}

std::vector<std::string> Vfs::list_all_paths() const {
  std::vector<std::string> out;
  // Depth-first over the namespace.
  std::vector<Ino> stack{root_};
  while (!stack.empty()) {
    Ino cur = stack.back();
    stack.pop_back();
    const Inode& n = inode(cur);
    if (cur != root_) out.push_back(canonical_path(cur));
    if (n.is_dir())
      for (const auto& [name, child] : n.entries) stack.push_back(child);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string Vfs::check_invariants() const {
  // Detached (unlinked but still allocated) inodes are legal; the checks
  // below verify that the *linked* namespace is internally consistent.
  for (const auto& [ino, node] : inodes_) {
    if (node->is_dir()) {
      for (const auto& [name, child] : node->entries) {
        if (!exists(child))
          return "dangling entry " + name + " in ino " + std::to_string(ino);
        auto pit = parent_.find(child);
        if (pit == parent_.end() || pit->second != ino)
          return "parent map mismatch for " + name;
        auto nit = name_in_parent_.find(child);
        if (nit == name_in_parent_.end() || nit->second != name)
          return "name map mismatch for " + name;
      }
    }
  }
  for (const auto& [child, dir] : parent_) {
    if (!exists(child)) return "parent map entry for dead inode";
    if (!exists(dir)) return "parent map points at dead dir";
    auto nit = name_in_parent_.find(child);
    if (nit == name_in_parent_.end())
      return "linked inode " + std::to_string(child) + " has no name";
    const Inode& d = inode(dir);
    auto eit = d.entries.find(nit->second);
    if (eit == d.entries.end() || eit->second != child)
      return "entry/name disagreement for " + std::to_string(child);
  }
  return {};
}

}  // namespace ep::os
