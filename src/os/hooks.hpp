// The interposition seam.
//
// Every environment-application interaction (file syscalls, getenv, argv
// access, network receive, registry reads, program output, app-level fault
// reports) flows through a hook chain as a SyscallCtx. This is the
// simulated equivalent of the ptrace/LD_PRELOAD interception a real
// implementation of the paper's tool would use, and it is where all three
// roles of the methodology plug in:
//
//   * the trace recorder discovers interaction points (procedure step 3),
//   * the injector perturbs the environment in `before` (direct faults)
//     or the returned input in `after` (indirect faults; step 6),
//   * the security oracle watches completed interactions for policy
//     violations (step 8).
#pragma once

#include <string>

#include "os/types.hpp"
#include "util/errno.hpp"

namespace ep::os {

class Kernel;

/// Application-level fault classes reported through the kernel so that
/// both the oracle (security violation?) and the Fuzz baseline (crash?)
/// can observe them.
enum class AppFault {
  buffer_overflow,     // unchecked copy exceeded a fixed buffer
  crash,               // unhandled condition, simulated SIGSEGV
  assertion,           // internal consistency check failed
  redzone_corruption,  // poisoned guard region past a buffer was overwritten
};

struct SyscallCtx {
  Site site;
  Pid pid = -1;
  std::string call;  // "open", "read", "getenv", "arg", "exec", "recv", ...
  std::string path;  // primary object as named by the program (pre-resolution)
  std::string aux;   // secondary operand: symlink target, env var name,
                     // service name, exec argv summary, fault detail ...
  bool has_input = false;        // does this call return input to the program?
  std::string* input = nullptr;  // mutable payload for after-hooks

  // Filled by the kernel before after-hooks run:
  std::string canonical;  // final resolved object path (empty if none)
  Ino object = kNoIno;    // final resolved inode (kNoIno if none)
  bool object_preexisting = false;  // object existed before this call
  bool object_untrusted = false;    // object or an ancestor marked untrusted
  // Could the *real* uid (the invoking user) access the object on its own?
  // Captured at interaction time, before the operation changes anything.
  bool object_ruid_readable = false;
  bool object_ruid_writable = false;
  std::string data;       // content written / read / output / message

  // Network/IPC ground truth (set by ep_net when the ctx is a channel op):
  bool net_unauthentic = false;         // message failed authenticity
  bool net_protocol_violation = false;  // message out of protocol order
  bool net_peer_untrusted = false;
  bool net_socket_shared = false;
  bool net_auth_confirmation = false;  // genuine AUTH_OK from a live,
                                       // trusted authority
  std::string channel_kind;            // "network" or "ipc" for channel ops

  // Before-hooks may force the syscall to fail without touching state —
  // used by the service-availability and existence perturbations.
  bool force_fail = false;
  Err forced_error = Err::inval;
};

class Interposer {
 public:
  virtual ~Interposer() = default;
  /// Runs before the kernel acts. Direct environment faults are injected
  /// here: the hook mutates kernel state (file attributes, network flags)
  /// so the interaction meets a perturbed environment.
  virtual void before(Kernel& /*k*/, SyscallCtx& /*ctx*/) {}
  /// Runs after the kernel acted, with the outcome. Indirect faults are
  /// injected here by rewriting *ctx.input before the program sees it.
  virtual void after(Kernel& /*k*/, SyscallCtx& /*ctx*/, Err /*result*/) {}
};

}  // namespace ep::os
