// Token-poisoned redzones: the memory-corruption tripwire.
//
// Every byte-addressed storage region the simulated environment hands to
// target code (fixed app buffers, Vfs file content, registry values) is
// padded with a small guard region filled with a fixed poison token. The
// legitimate mutation paths never touch the guard, so any non-poison byte
// found there is proof that something wrote past the end of the logical
// region — the silent off-by-N corruption the paper's self-reporting
// oracle cannot see. The Kernel validates guards on read/write syscalls
// and in a deterministic teardown sweep (see os/kernel.hpp and
// docs/ORACLES.md); a broken guard surfaces as
// `AppFault::redzone_corruption`.
//
// The token is a repeating 4-byte pattern rather than a single byte so a
// same-byte memset of the whole allocation cannot masquerade as intact
// poison, and it contains no NUL so C-string-style writes cannot
// accidentally re-create it.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace ep::os::redzone {

/// Guard width in bytes. Wide enough to catch every off-by-N the test
/// battery injects (N up to a buffer capacity is clamped to this width).
inline constexpr std::size_t kSize = 16;

/// The repeating poison token.
inline constexpr char kToken[4] = {'\xDE', '\xAD', '\xC0', '\xDE'};

/// A freshly poisoned guard region of kSize bytes.
[[nodiscard]] inline std::string poison() {
  std::string z;
  z.reserve(kSize);
  for (std::size_t i = 0; i < kSize; ++i) z.push_back(kToken[i % 4]);
  return z;
}

/// True when `zone` is exactly an intact poison region. A resized zone is
/// corruption too: the only legitimate state is kSize poison bytes.
[[nodiscard]] inline bool intact(std::string_view zone) {
  if (zone.size() != kSize) return false;
  for (std::size_t i = 0; i < kSize; ++i)
    if (zone[i] != kToken[i % 4]) return false;
  return true;
}

/// Offset of the first non-poison byte, or kSize when the zone is intact
/// byte-for-byte (a *shorter* zone with a clean prefix reports its size).
/// Feeds the "N byte(s) past the end" detail in corruption reports.
[[nodiscard]] inline std::size_t first_clobbered(std::string_view zone) {
  std::size_t n = zone.size() < kSize ? zone.size() : kSize;
  for (std::size_t i = 0; i < n; ++i)
    if (zone[i] != kToken[i % 4]) return i;
  return n;
}

/// Count of leading clobbered bytes — how far past the end a writer got.
/// Approximates "bytes overwritten" for contiguous overruns, which is what
/// the off-by-N battery injects.
[[nodiscard]] inline std::size_t clobbered_prefix(std::string_view zone) {
  std::size_t n = zone.size() < kSize ? zone.size() : kSize;
  std::size_t i = 0;
  while (i < n && zone[i] != kToken[i % 4]) ++i;
  return i;
}

}  // namespace ep::os::redzone
