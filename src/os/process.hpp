// Simulated processes: credentials, environment variables, fd table.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "os/types.hpp"

namespace ep::os {

enum class OpenFlag : unsigned {
  rd = 1u << 0,
  wr = 1u << 1,
  creat = 1u << 2,
  excl = 1u << 3,
  trunc = 1u << 4,
  append = 1u << 5,
  nofollow = 1u << 6,  // refuse a final-component symlink, like O_NOFOLLOW
};

struct OpenFlags {
  unsigned bits = 0;
  constexpr OpenFlags() = default;
  constexpr OpenFlags(OpenFlag f) : bits(static_cast<unsigned>(f)) {}  // NOLINT
  [[nodiscard]] constexpr bool has(OpenFlag f) const {
    return (bits & static_cast<unsigned>(f)) != 0;
  }
  friend constexpr OpenFlags operator|(OpenFlags a, OpenFlags b) {
    OpenFlags o;
    o.bits = a.bits | b.bits;
    return o;
  }
};

constexpr OpenFlags operator|(OpenFlag a, OpenFlag b) {
  return OpenFlags(a) | OpenFlags(b);
}

struct OpenFile {
  Ino ino = kNoIno;
  std::size_t offset = 0;
  OpenFlags flags;
  std::string opened_path;  // as passed to open(); canonical path may differ
};

struct Process {
  Pid pid = -1;
  Pid ppid = -1;
  Uid ruid = kRootUid;  // real uid: who invoked the program
  Uid euid = kRootUid;  // effective uid: whose privilege it runs with
  Gid rgid = kRootGid;
  Gid egid = kRootGid;
  std::string cwd = "/";
  unsigned umask = 022;
  std::string exe;  // path of the executing binary
  std::vector<std::string> args;
  std::map<std::string, std::string> env;
  std::map<Fd, OpenFile> fds;
  Fd next_fd = 3;  // 0/1/2 notionally reserved for stdio
  std::string stdout_text;
  bool crashed = false;
  int exit_code = 0;

  /// The privilege gap the paper's threat model cares about: a set-uid
  /// program running with more privilege than the user who invoked it.
  [[nodiscard]] bool privileged() const { return euid != ruid; }
};

}  // namespace ep::os
