// Shared identifiers and limits for the simulated operating system.
//
// The simulated kernel mirrors the classic UNIX model the paper's target
// programs (lpr, turnin) ran on: numeric uids/gids, rwx permission bits
// with a set-uid bit, processes with distinct real and effective ids.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

namespace ep::os {

using Uid = int;
using Gid = int;
using Pid = int;
using Fd = int;
using Ino = int;

inline constexpr Uid kRootUid = 0;
inline constexpr Gid kRootGid = 0;
inline constexpr Ino kNoIno = -1;

/// POSIX-style limits; long-name perturbations bounce off these in the
/// kernel, while application-level fixed buffers overflow *before* the
/// syscall — exactly the split real overflows exploit.
inline constexpr std::size_t kMaxNameLen = 255;
inline constexpr std::size_t kMaxPathLen = 4096;
inline constexpr int kMaxSymlinkDepth = 8;

/// Permission bit masks (octal, as in chmod(2)).
inline constexpr unsigned kSetUidBit = 04000;
/// Sticky bit on directories: entries may only be removed/renamed by the
/// entry's owner, the directory's owner, or root (restricted deletion).
inline constexpr unsigned kStickyBit = 01000;
inline constexpr unsigned kOwnerRead = 0400;
inline constexpr unsigned kOwnerWrite = 0200;
inline constexpr unsigned kOwnerExec = 0100;
inline constexpr unsigned kGroupRead = 0040;
inline constexpr unsigned kGroupWrite = 0020;
inline constexpr unsigned kGroupExec = 0010;
inline constexpr unsigned kOtherRead = 0004;
inline constexpr unsigned kOtherWrite = 0002;
inline constexpr unsigned kOtherExec = 0001;
inline constexpr unsigned kPermMask = 0777;

enum class Perm { read, write, exec };

/// A stable identifier for one environment-application interaction site in
/// a target program's source. The methodology's unit of coverage: the
/// trace of distinct Sites encountered during a run is the set of
/// interaction points (Section 3.3, step 3), and faults are planned
/// per-site.
struct Site {
  std::string unit;  // source unit of the target program, e.g. "turnin.c"
  int line = 0;      // line in that unit
  std::string tag;   // short stable label, e.g. "fopen-projlist"

  [[nodiscard]] std::string str() const {
    return unit + ":" + std::to_string(line) + " [" + tag + "]";
  }

  friend bool operator==(const Site& a, const Site& b) {
    return a.unit == b.unit && a.line == b.line && a.tag == b.tag;
  }
  friend bool operator<(const Site& a, const Site& b) {
    if (a.unit != b.unit) return a.unit < b.unit;
    if (a.line != b.line) return a.line < b.line;
    return a.tag < b.tag;
  }
};

}  // namespace ep::os

template <>
struct std::hash<ep::os::Site> {
  std::size_t operator()(const ep::os::Site& s) const noexcept {
    std::size_t h = std::hash<std::string>{}(s.unit);
    h = h * 1315423911u ^ std::hash<int>{}(s.line);
    h = h * 1315423911u ^ std::hash<std::string>{}(s.tag);
    return h;
  }
};
