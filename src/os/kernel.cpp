#include "os/kernel.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace ep::os {

namespace {

std::string summarize_args(const std::vector<std::string>& args) {
  return ep::join(args, " ");
}

/// Restricted deletion (the sticky bit): in a sticky directory only the
/// entry's owner, the directory's owner, or root may remove or rename an
/// entry, even when the directory itself is writable.
bool sticky_denies(const Process& p, const Inode& dir, const Inode& victim) {
  if ((dir.mode & kStickyBit) == 0) return false;
  return p.euid != kRootUid && p.euid != dir.uid && p.euid != victim.uid;
}

}  // namespace

Kernel::Kernel() {
  users_[kRootUid] = {"root", kRootGid};
}

void Kernel::add_user(Uid uid, std::string name, Gid gid) {
  users_[uid] = {std::move(name), gid};
}

std::string Kernel::user_name(Uid uid) const {
  auto it = users_.find(uid);
  return it == users_.end() ? "uid" + std::to_string(uid) : it->second.first;
}

void Kernel::register_image(const std::string& name, AppImage image) {
  images_[name] = std::move(image);
}

bool Kernel::has_image(const std::string& name) const {
  return images_.count(name) != 0;
}

Pid Kernel::make_process(Uid ruid, Gid rgid, std::string cwd,
                         std::map<std::string, std::string> env) {
  Pid pid = next_pid_++;
  Process p;
  p.pid = pid;
  p.ruid = ruid;
  p.euid = ruid;
  p.rgid = rgid;
  p.egid = rgid;
  p.cwd = std::move(cwd);
  p.env = std::move(env);
  procs_[pid] = std::move(p);
  return pid;
}

Process& Kernel::proc(Pid pid) {
  auto it = procs_.find(pid);
  if (it == procs_.end())
    throw std::logic_error("no such process: " + std::to_string(pid));
  return it->second;
}

const Process& Kernel::proc(Pid pid) const {
  auto it = procs_.find(pid);
  if (it == procs_.end())
    throw std::logic_error("no such process: " + std::to_string(pid));
  return it->second;
}

bool Kernel::has_proc(Pid pid) const { return procs_.count(pid) != 0; }

void Kernel::add_interposer(std::shared_ptr<Interposer> hook) {
  run_.hooks.push_back(std::move(hook));
}

void Kernel::clear_interposers() { run_.hooks.clear(); }

void Kernel::dispatch_before(SyscallCtx& ctx) {
  for (auto& h : run_.hooks) h->before(*this, ctx);
}

void Kernel::dispatch_after(SyscallCtx& ctx, Err result) {
  for (auto& h : run_.hooks) h->after(*this, ctx, result);
}

bool Kernel::ancestor_untrusted(Ino ino) const {
  // Walks from the object to the root via canonical parents; an untrusted
  // directory taints everything below it (the paper's profile-directory
  // trustability case).
  int guard = 0;
  Ino cur = ino;
  while (vfs_.exists(cur) && guard++ < 512) {
    if (!vfs_.inode(cur).trusted) return true;
    std::string p = vfs_.canonical_path(cur);
    if (p == "/" || ep::starts_with(p, "<detached")) break;
    auto up = vfs_.resolve(path::dirname(p), "/", kRootUid, kRootGid);
    if (!up.ok() || up.value() == cur) break;
    cur = up.value();
  }
  return false;
}

void Kernel::describe_object(SyscallCtx& ctx, Ino ino) const {
  ctx.object = ino;
  if (vfs_.exists(ino)) {
    ctx.canonical = vfs_.canonical_path(ino);
    ctx.object_untrusted = ancestor_untrusted(ino);
    if (ctx.pid >= 0 && has_proc(ctx.pid)) {
      const Process& p = proc(ctx.pid);
      const Inode& node = vfs_.inode(ino);
      ctx.object_ruid_readable =
          Vfs::permits_with_root(node, p.ruid, p.rgid, Perm::read);
      ctx.object_ruid_writable =
          Vfs::permits_with_root(node, p.ruid, p.rgid, Perm::write);
    }
  }
}

bool Kernel::uid_can(Uid uid, Gid gid, const std::string& p, Perm perm) const {
  auto r = vfs_.resolve(p, "/", kRootUid, kRootGid);
  if (!r.ok()) return false;
  return Vfs::permits_with_root(vfs_.inode(r.value()), uid, gid, perm);
}

SysResult<std::string> Kernel::peek(const std::string& p) const {
  auto r = vfs_.resolve(p, "/", kRootUid, kRootGid);
  if (!r.ok()) return r.error();
  const Inode& n = vfs_.inode(r.value());
  if (!n.is_regular()) return Err::isdir;
  return n.content;
}

// --- open / close / read / write -------------------------------------------

SysResult<Fd> Kernel::open(const Site& site, Pid pid, const std::string& pth,
                           OpenFlags flags, unsigned create_mode) {
  Process& p = proc(pid);
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "open";
  ctx.path = pth;
  // Summarize intent for hooks: perturbers and the oracle distinguish
  // read-only opens (disclosure risk) from writing/creating opens
  // (clobbering risk).
  if (flags.has(OpenFlag::rd)) ctx.aux += "r";
  if (flags.has(OpenFlag::wr)) ctx.aux += "w";
  if (flags.has(OpenFlag::creat)) ctx.aux += "c";
  if (flags.has(OpenFlag::excl)) ctx.aux += "x";
  if (flags.has(OpenFlag::trunc)) ctx.aux += "t";
  dispatch_before(ctx);
  if (ctx.force_fail) {
    dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }

  auto finish = [&](Err e) -> SysResult<Fd> {
    dispatch_after(ctx, e);
    return e;
  };

  auto rp = vfs_.resolve_parent(pth, p.cwd, p.euid, p.egid);
  if (!rp.ok()) return finish(rp.error());
  ResolvedParent cur = rp.value();

  // Follow a final-component symlink chain by hand so that O_CREAT can
  // create *through* a dangling link (the classic spool-file attack) while
  // O_EXCL and O_NOFOLLOW refuse links outright.
  int depth = 0;
  while (cur.leaf_ino != kNoIno && vfs_.inode(cur.leaf_ino).is_symlink()) {
    if (flags.has(OpenFlag::nofollow)) return finish(Err::loop);
    if (flags.has(OpenFlag::creat) && flags.has(OpenFlag::excl))
      return finish(Err::exist);
    if (++depth > kMaxSymlinkDepth) return finish(Err::loop);
    const std::string& target = vfs_.inode(cur.leaf_ino).content;
    std::string base = path::dirname(cur.canonical);
    std::string next =
        path::is_absolute(target) ? target : path::join(base, target);
    auto nrp = vfs_.resolve_parent(next, p.cwd, p.euid, p.egid);
    if (!nrp.ok()) return finish(nrp.error());
    cur = nrp.value();
  }

  Ino file_ino = kNoIno;
  if (cur.leaf_ino != kNoIno) {
    if (flags.has(OpenFlag::creat) && flags.has(OpenFlag::excl)) {
      describe_object(ctx, cur.leaf_ino);
      ctx.object_preexisting = true;
      return finish(Err::exist);
    }
    const Inode& node = vfs_.inode(cur.leaf_ino);
    if (node.is_dir() && flags.has(OpenFlag::wr)) return finish(Err::isdir);
    if (flags.has(OpenFlag::rd) &&
        !Vfs::permits_with_root(node, p.euid, p.egid, Perm::read))
      return finish(Err::acces);
    if (flags.has(OpenFlag::wr) &&
        !Vfs::permits_with_root(node, p.euid, p.egid, Perm::write))
      return finish(Err::acces);
    if (flags.has(OpenFlag::trunc) && flags.has(OpenFlag::wr))
      vfs_.mutate(cur.leaf_ino).content.clear();
    file_ino = cur.leaf_ino;
    ctx.object_preexisting = true;
  } else {
    if (!flags.has(OpenFlag::creat)) return finish(Err::noent);
    const Inode& dir = vfs_.inode(cur.dir_ino);
    if (!Vfs::permits_with_root(dir, p.euid, p.egid, Perm::write))
      return finish(Err::acces);
    unsigned mode = create_mode & ~p.umask & kPermMask;
    auto created = vfs_.create_file(cur.dir_ino, cur.leaf, p.euid, p.egid, mode);
    if (!created.ok()) return finish(created.error());
    file_ino = created.value();
    ctx.object_preexisting = false;
  }

  describe_object(ctx, file_ino);
  OpenFile of;
  of.ino = file_ino;
  of.flags = flags;
  of.opened_path = pth;
  of.offset = flags.has(OpenFlag::append) ? vfs_.inode(file_ino).content.size()
                                          : 0;
  Fd fd = p.next_fd++;
  p.fds[fd] = of;
  dispatch_after(ctx, Err::ok);
  return fd;
}

SysStatus Kernel::close(Pid pid, Fd fd) {
  Process& p = proc(pid);
  if (p.fds.erase(fd) == 0) return Err::badf;
  return ok_status();
}

SysResult<std::string> Kernel::read(const Site& site, Pid pid, Fd fd,
                                    std::size_t n) {
  Process& p = proc(pid);
  auto it = p.fds.find(fd);
  if (it == p.fds.end()) return Err::badf;
  OpenFile& of = it->second;
  if (!of.flags.has(OpenFlag::rd)) return Err::badf;
  if (!vfs_.exists(of.ino)) return Err::io;

  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "read";
  ctx.path = of.opened_path;
  ctx.has_input = true;
  describe_object(ctx, of.ino);
  ctx.object_preexisting = true;
  dispatch_before(ctx);
  if (ctx.force_fail) {
    dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  check_inode_redzone(site, pid, of.ino);

  // Fetched only after the hooks ran: a perturber may have rewritten the
  // node, and under copy-on-write a reference taken earlier could still
  // point at the shared pre-perturbation copy.
  const Inode& node = vfs_.inode(of.ino);
  std::string chunk;
  if (of.offset < node.content.size()) {
    std::size_t take = n == std::string::npos
                           ? node.content.size() - of.offset
                           : std::min(n, node.content.size() - of.offset);
    chunk = node.content.substr(of.offset, take);
    of.offset += take;
  }
  ctx.data = chunk;
  ctx.input = &ctx.data;
  dispatch_after(ctx, Err::ok);
  return ctx.data;  // possibly rewritten by an indirect fault
}

SysResult<std::string> Kernel::read_line(const Site& site, Pid pid, Fd fd) {
  Process& p = proc(pid);
  auto it = p.fds.find(fd);
  if (it == p.fds.end()) return Err::badf;
  OpenFile& of = it->second;
  if (!of.flags.has(OpenFlag::rd)) return Err::badf;
  if (!vfs_.exists(of.ino)) return Err::io;
  if (of.offset >= vfs_.inode(of.ino).content.size()) return Err::io;  // EOF

  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "read";
  ctx.path = of.opened_path;
  ctx.has_input = true;
  describe_object(ctx, of.ino);
  ctx.object_preexisting = true;
  dispatch_before(ctx);
  if (ctx.force_fail) {
    dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  check_inode_redzone(site, pid, of.ino);

  // Re-fetched after the hooks: see read() — a stale reference would miss
  // a content perturbation under copy-on-write.
  const Inode& node = vfs_.inode(of.ino);
  if (of.offset >= node.content.size()) {
    // A hook shrank the file below our offset: EOF, like read()'s guard.
    of.offset = node.content.size();
    dispatch_after(ctx, Err::io);
    return Err::io;
  }
  std::size_t nl = node.content.find('\n', of.offset);
  std::string line;
  if (nl == std::string::npos) {
    line = node.content.substr(of.offset);
    of.offset = node.content.size();
  } else {
    line = node.content.substr(of.offset, nl - of.offset);
    of.offset = nl + 1;
  }
  ctx.data = line;
  ctx.input = &ctx.data;
  dispatch_after(ctx, Err::ok);
  return ctx.data;
}

SysResult<std::size_t> Kernel::write(const Site& site, Pid pid, Fd fd,
                                     std::string_view data) {
  Process& p = proc(pid);
  auto it = p.fds.find(fd);
  if (it == p.fds.end()) return Err::badf;
  OpenFile& of = it->second;
  if (!of.flags.has(OpenFlag::wr)) return Err::badf;
  if (!vfs_.exists(of.ino)) return Err::io;

  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "write";
  ctx.path = of.opened_path;
  describe_object(ctx, of.ino);
  ctx.object_preexisting = true;  // refined by the oracle's created-set
  ctx.data = std::string(data);
  dispatch_before(ctx);
  if (ctx.force_fail) {
    dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  check_inode_redzone(site, pid, of.ino);

  Inode& node = vfs_.mutate(of.ino);
  if (of.flags.has(OpenFlag::append)) of.offset = node.content.size();
  if (node.content.size() < of.offset + data.size())
    node.content.resize(of.offset + data.size());
  node.content.replace(of.offset, data.size(), std::string(data));
  of.offset += data.size();
  dispatch_after(ctx, Err::ok);
  return data.size();
}

// --- stat family ------------------------------------------------------------

SysResult<StatInfo> Kernel::stat(const Site& site, Pid pid,
                                 const std::string& pth) {
  Process& p = proc(pid);
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "stat";
  ctx.path = pth;
  dispatch_before(ctx);
  if (ctx.force_fail) {
    dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  auto r = vfs_.resolve(pth, p.cwd, p.euid, p.egid, /*follow_final=*/true);
  if (!r.ok()) {
    dispatch_after(ctx, r.error());
    return r.error();
  }
  describe_object(ctx, r.value());
  ctx.object_preexisting = true;
  auto s = vfs_.stat_inode(r.value());
  dispatch_after(ctx, Err::ok);
  return s;
}

SysResult<StatInfo> Kernel::lstat(const Site& site, Pid pid,
                                  const std::string& pth) {
  Process& p = proc(pid);
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "lstat";
  ctx.path = pth;
  dispatch_before(ctx);
  if (ctx.force_fail) {
    dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  auto r = vfs_.resolve(pth, p.cwd, p.euid, p.egid, /*follow_final=*/false);
  if (!r.ok()) {
    dispatch_after(ctx, r.error());
    return r.error();
  }
  describe_object(ctx, r.value());
  ctx.object_preexisting = true;
  auto s = vfs_.stat_inode(r.value());
  dispatch_after(ctx, Err::ok);
  return s;
}

SysResult<StatInfo> Kernel::fstat(Pid pid, Fd fd) {
  Process& p = proc(pid);
  auto it = p.fds.find(fd);
  if (it == p.fds.end()) return Err::badf;
  return vfs_.stat_inode(it->second.ino);
}

SysStatus Kernel::access(const Site& site, Pid pid, const std::string& pth,
                         Perm perm) {
  Process& p = proc(pid);
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "access";
  ctx.path = pth;
  dispatch_before(ctx);
  if (ctx.force_fail) {
    dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  // access(2) answers for the *real* uid — the check set-uid programs use
  // to ask "could my invoker do this?", and the check half of TOCTTOU.
  auto r = vfs_.resolve(pth, p.cwd, p.ruid, p.rgid, /*follow_final=*/true);
  Err e = Err::ok;
  if (!r.ok()) {
    e = r.error();
  } else {
    describe_object(ctx, r.value());
    ctx.object_preexisting = true;
    if (!Vfs::permits_with_root(vfs_.inode(r.value()), p.ruid, p.rgid, perm))
      e = Err::acces;
  }
  dispatch_after(ctx, e);
  if (e != Err::ok) return e;
  return ok_status();
}

// --- namespace operations ---------------------------------------------------

SysStatus Kernel::mkdir(const Site& site, Pid pid, const std::string& pth,
                        unsigned mode) {
  Process& p = proc(pid);
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "mkdir";
  ctx.path = pth;
  dispatch_before(ctx);
  if (ctx.force_fail) {
    dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  auto rp = vfs_.resolve_parent(pth, p.cwd, p.euid, p.egid);
  auto finish = [&](Err e) -> SysStatus {
    dispatch_after(ctx, e);
    if (e != Err::ok) return e;
    return ok_status();
  };
  if (!rp.ok()) return finish(rp.error());
  if (rp.value().leaf_ino != kNoIno) return finish(Err::exist);
  const Inode& dir = vfs_.inode(rp.value().dir_ino);
  if (!Vfs::permits_with_root(dir, p.euid, p.egid, Perm::write))
    return finish(Err::acces);
  auto made = vfs_.create_dir(rp.value().dir_ino, rp.value().leaf, p.euid,
                              p.egid, mode & ~p.umask & kPermMask);
  if (!made.ok()) return finish(made.error());
  describe_object(ctx, made.value());
  ctx.object_preexisting = false;
  return finish(Err::ok);
}

SysStatus Kernel::rmdir(const Site& site, Pid pid, const std::string& pth) {
  Process& p = proc(pid);
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "rmdir";
  ctx.path = pth;
  dispatch_before(ctx);
  if (ctx.force_fail) {
    dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  auto rp = vfs_.resolve_parent(pth, p.cwd, p.euid, p.egid);
  auto finish = [&](Err e) -> SysStatus {
    dispatch_after(ctx, e);
    if (e != Err::ok) return e;
    return ok_status();
  };
  if (!rp.ok()) return finish(rp.error());
  if (rp.value().leaf_ino == kNoIno) return finish(Err::noent);
  describe_object(ctx, rp.value().leaf_ino);
  ctx.object_preexisting = true;
  ctx.canonical = rp.value().canonical;
  const Inode& dir = vfs_.inode(rp.value().dir_ino);
  if (!Vfs::permits_with_root(dir, p.euid, p.egid, Perm::write))
    return finish(Err::acces);
  if (sticky_denies(p, dir, vfs_.inode(rp.value().leaf_ino)))
    return finish(Err::perm);
  auto r = vfs_.remove_dir(rp.value().dir_ino, rp.value().leaf);
  return finish(r.ok() ? Err::ok : r.error());
}


SysStatus Kernel::unlink(const Site& site, Pid pid, const std::string& pth) {
  Process& p = proc(pid);
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "unlink";
  ctx.path = pth;
  dispatch_before(ctx);
  if (ctx.force_fail) {
    dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  auto rp = vfs_.resolve_parent(pth, p.cwd, p.euid, p.egid);
  auto finish = [&](Err e) -> SysStatus {
    dispatch_after(ctx, e);
    if (e != Err::ok) return e;
    return ok_status();
  };
  if (!rp.ok()) return finish(rp.error());
  if (rp.value().leaf_ino == kNoIno) return finish(Err::noent);
  describe_object(ctx, rp.value().leaf_ino);
  ctx.object_preexisting = true;
  ctx.canonical = rp.value().canonical;
  const Inode& dir = vfs_.inode(rp.value().dir_ino);
  if (!Vfs::permits_with_root(dir, p.euid, p.egid, Perm::write))
    return finish(Err::acces);
  if (sticky_denies(p, dir, vfs_.inode(rp.value().leaf_ino)))
    return finish(Err::perm);
  auto r = vfs_.remove(rp.value().dir_ino, rp.value().leaf);
  return finish(r.ok() ? Err::ok : r.error());
}

SysStatus Kernel::rename(const Site& site, Pid pid, const std::string& from,
                         const std::string& to) {
  Process& p = proc(pid);
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "rename";
  ctx.path = from;
  ctx.aux = to;
  dispatch_before(ctx);
  if (ctx.force_fail) {
    dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  auto finish = [&](Err e) -> SysStatus {
    dispatch_after(ctx, e);
    if (e != Err::ok) return e;
    return ok_status();
  };
  auto rf = vfs_.resolve_parent(from, p.cwd, p.euid, p.egid);
  if (!rf.ok()) return finish(rf.error());
  if (rf.value().leaf_ino == kNoIno) return finish(Err::noent);
  auto rt = vfs_.resolve_parent(to, p.cwd, p.euid, p.egid);
  if (!rt.ok()) return finish(rt.error());
  const Inode& fdir = vfs_.inode(rf.value().dir_ino);
  const Inode& tdir = vfs_.inode(rt.value().dir_ino);
  if (!Vfs::permits_with_root(fdir, p.euid, p.egid, Perm::write) ||
      !Vfs::permits_with_root(tdir, p.euid, p.egid, Perm::write))
    return finish(Err::acces);
  if (sticky_denies(p, fdir, vfs_.inode(rf.value().leaf_ino)))
    return finish(Err::perm);
  if (rt.value().leaf_ino != kNoIno &&
      sticky_denies(p, tdir, vfs_.inode(rt.value().leaf_ino)))
    return finish(Err::perm);
  describe_object(ctx, rf.value().leaf_ino);
  ctx.object_preexisting = rt.value().leaf_ino != kNoIno;
  ctx.canonical = rt.value().canonical;
  auto r = vfs_.rename_entry(rf.value().dir_ino, rf.value().leaf,
                             rt.value().dir_ino, rt.value().leaf);
  return finish(r.ok() ? Err::ok : r.error());
}

SysStatus Kernel::symlink(const Site& site, Pid pid, const std::string& target,
                          const std::string& linkpath) {
  Process& p = proc(pid);
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "symlink";
  ctx.path = linkpath;
  ctx.aux = target;
  dispatch_before(ctx);
  if (ctx.force_fail) {
    dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  auto finish = [&](Err e) -> SysStatus {
    dispatch_after(ctx, e);
    if (e != Err::ok) return e;
    return ok_status();
  };
  auto rp = vfs_.resolve_parent(linkpath, p.cwd, p.euid, p.egid);
  if (!rp.ok()) return finish(rp.error());
  if (rp.value().leaf_ino != kNoIno) return finish(Err::exist);
  const Inode& dir = vfs_.inode(rp.value().dir_ino);
  if (!Vfs::permits_with_root(dir, p.euid, p.egid, Perm::write))
    return finish(Err::acces);
  auto made = vfs_.create_symlink(rp.value().dir_ino, rp.value().leaf, p.euid,
                                  p.egid, target);
  if (!made.ok()) return finish(made.error());
  describe_object(ctx, made.value());
  return finish(Err::ok);
}

SysResult<std::string> Kernel::readlink(const Site& site, Pid pid,
                                        const std::string& pth) {
  Process& p = proc(pid);
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "readlink";
  ctx.path = pth;
  ctx.has_input = true;
  dispatch_before(ctx);
  if (ctx.force_fail) {
    dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  auto r = vfs_.resolve(pth, p.cwd, p.euid, p.egid, /*follow_final=*/false);
  if (!r.ok()) {
    dispatch_after(ctx, r.error());
    return r.error();
  }
  const Inode& n = vfs_.inode(r.value());
  if (!n.is_symlink()) {
    dispatch_after(ctx, Err::inval);
    return Err::inval;
  }
  describe_object(ctx, r.value());
  ctx.data = n.content;
  ctx.input = &ctx.data;
  dispatch_after(ctx, Err::ok);
  return ctx.data;
}

SysResult<std::vector<std::string>> Kernel::readdir(const Site& site, Pid pid,
                                                    const std::string& pth) {
  Process& p = proc(pid);
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "readdir";
  ctx.path = pth;
  ctx.has_input = true;
  dispatch_before(ctx);
  if (ctx.force_fail) {
    dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  auto r = vfs_.resolve(pth, p.cwd, p.euid, p.egid, /*follow_final=*/true);
  if (!r.ok()) {
    dispatch_after(ctx, r.error());
    return r.error();
  }
  const Inode& n = vfs_.inode(r.value());
  if (!n.is_dir()) {
    dispatch_after(ctx, Err::notdir);
    return Err::notdir;
  }
  if (!Vfs::permits_with_root(n, p.euid, p.egid, Perm::read)) {
    dispatch_after(ctx, Err::acces);
    return Err::acces;
  }
  describe_object(ctx, r.value());
  std::vector<std::string> names;
  names.reserve(n.entries.size());
  for (const auto& [name, child] : n.entries) names.push_back(name);
  // Deliver the listing through ctx.data (newline-joined) so indirect
  // faults can rewrite it like any other input.
  ctx.data = ep::join(names, "\n");
  ctx.input = &ctx.data;
  dispatch_after(ctx, Err::ok);
  return ep::split_nonempty(ctx.data, '\n');
}

SysStatus Kernel::chmod(const Site& site, Pid pid, const std::string& pth,
                        unsigned mode) {
  Process& p = proc(pid);
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "chmod";
  ctx.path = pth;
  dispatch_before(ctx);
  if (ctx.force_fail) {
    dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  auto finish = [&](Err e) -> SysStatus {
    dispatch_after(ctx, e);
    if (e != Err::ok) return e;
    return ok_status();
  };
  auto r = vfs_.resolve(pth, p.cwd, p.euid, p.egid, /*follow_final=*/true);
  if (!r.ok()) return finish(r.error());
  const Inode& n = vfs_.inode(r.value());
  describe_object(ctx, r.value());
  ctx.object_preexisting = true;
  if (p.euid != kRootUid && p.euid != n.uid) return finish(Err::perm);
  vfs_.mutate(r.value()).mode = mode & (kPermMask | kSetUidBit | kStickyBit);
  return finish(Err::ok);
}

SysStatus Kernel::chown(const Site& site, Pid pid, const std::string& pth,
                        Uid uid, Gid gid) {
  Process& p = proc(pid);
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "chown";
  ctx.path = pth;
  dispatch_before(ctx);
  if (ctx.force_fail) {
    dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  auto finish = [&](Err e) -> SysStatus {
    dispatch_after(ctx, e);
    if (e != Err::ok) return e;
    return ok_status();
  };
  auto r = vfs_.resolve(pth, p.cwd, p.euid, p.egid, /*follow_final=*/true);
  if (!r.ok()) return finish(r.error());
  // Classic UNIX: only root may give files away.
  if (p.euid != kRootUid) return finish(Err::perm);
  describe_object(ctx, r.value());
  ctx.object_preexisting = true;
  Inode& n = vfs_.mutate(r.value());
  n.uid = uid;
  n.gid = gid;
  return finish(Err::ok);
}

SysStatus Kernel::chdir(const Site& site, Pid pid, const std::string& pth) {
  Process& p = proc(pid);
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "chdir";
  ctx.path = pth;
  dispatch_before(ctx);
  if (ctx.force_fail) {
    dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  auto finish = [&](Err e) -> SysStatus {
    dispatch_after(ctx, e);
    if (e != Err::ok) return e;
    return ok_status();
  };
  auto r = vfs_.resolve(pth, p.cwd, p.euid, p.egid, /*follow_final=*/true);
  if (!r.ok()) return finish(r.error());
  const Inode& n = vfs_.inode(r.value());
  if (!n.is_dir()) return finish(Err::notdir);
  if (!Vfs::permits_with_root(n, p.euid, p.egid, Perm::exec))
    return finish(Err::acces);
  describe_object(ctx, r.value());
  p.cwd = vfs_.canonical_path(r.value());
  return finish(Err::ok);
}

std::string Kernel::getcwd(Pid pid) const { return proc(pid).cwd; }

// --- input/output pseudo-syscalls -------------------------------------------

SysResult<std::string> Kernel::getenv(const Site& site, Pid pid,
                                      const std::string& name) {
  Process& p = proc(pid);
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "getenv";
  ctx.aux = name;
  ctx.has_input = true;
  dispatch_before(ctx);
  if (ctx.force_fail) {
    dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  auto it = p.env.find(name);
  bool found = it != p.env.end();
  ctx.data = found ? it->second : std::string{};
  ctx.input = &ctx.data;
  dispatch_after(ctx, found ? Err::ok : Err::noent);
  // An injected value can materialize a variable the OS never set — the
  // "initialization the programmer never sees" case from Section 2.3.1.
  if (!found && ctx.data.empty()) return Err::noent;
  return ctx.data;
}

std::string Kernel::arg(const Site& site, Pid pid, std::size_t idx) {
  Process& p = proc(pid);
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "arg";
  ctx.aux = std::to_string(idx);
  ctx.has_input = true;
  dispatch_before(ctx);
  ctx.data = idx < p.args.size() ? p.args[idx] : std::string{};
  ctx.input = &ctx.data;
  dispatch_after(ctx, Err::ok);
  return ctx.data;
}

std::size_t Kernel::argc(Pid pid) const { return proc(pid).args.size(); }

void Kernel::output(const Site& site, Pid pid, std::string_view text) {
  Process& p = proc(pid);
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "output";
  ctx.data = std::string(text);
  dispatch_before(ctx);
  if (ctx.force_fail) {
    dispatch_after(ctx, ctx.forced_error);
    return;
  }
  p.stdout_text += text;
  p.stdout_text += '\n';
  dispatch_after(ctx, Err::ok);
}

void Kernel::app_fault(const Site& site, Pid pid, AppFault kind,
                       const std::string& detail) {
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "app_fault";
  switch (kind) {
    case AppFault::buffer_overflow: ctx.aux = "buffer_overflow"; break;
    case AppFault::crash: ctx.aux = "crash"; break;
    case AppFault::assertion: ctx.aux = "assertion"; break;
    case AppFault::redzone_corruption: ctx.aux = "redzone_corruption"; break;
  }
  ctx.data = detail;
  dispatch_before(ctx);
  dispatch_after(ctx, Err::ok);
}

// --- redzone memory oracle --------------------------------------------------

void Kernel::register_redzone_guard(const Site& site, Pid pid,
                                    std::string label,
                                    const std::string* zone) {
  run_.redzone_guards.push_back({site, pid, std::move(label), zone});
}

void Kernel::unregister_redzone_guard(const std::string* zone) {
  auto& guards = run_.redzone_guards;
  for (auto it = guards.begin(); it != guards.end(); ++it) {
    if (it->zone != zone) continue;
    if (!redzone::intact(*zone))
      report_redzone_corruption(it->site, it->pid, it->label, *zone);
    guards.erase(it);
    return;
  }
}

void Kernel::report_redzone_corruption(const Site& site, Pid pid,
                                       const std::string& object,
                                       std::string_view zone) {
  if (!redzone_audit_) return;
  // One violation per corrupted region per run, no matter how many
  // syscalls touch it afterwards — keeps reports (and the wire bytes
  // downstream) independent of how often a region happens to be re-read.
  if (!run_.redzone_reported.insert(object).second) return;
  std::size_t n = redzone::clobbered_prefix(zone);
  std::string detail =
      n > 0 ? std::to_string(n) + " byte(s) of poison overwritten past " +
                  object
            : "guard region damaged past " + object;
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "app_fault";
  ctx.aux = "redzone_corruption";
  ctx.path = object;  // the oracle's per-object dedup key
  ctx.data = detail;
  dispatch_before(ctx);
  dispatch_after(ctx, Err::ok);
}

void Kernel::check_inode_redzone(const Site& site, Pid pid, Ino ino) {
  if (!redzone_audit_ || !vfs_.exists(ino)) return;
  const Inode& node = vfs_.inode(ino);
  if (redzone::intact(node.redzone)) return;
  report_redzone_corruption(site, pid, vfs_.canonical_path(ino),
                            node.redzone);
}

void Kernel::validate_redzones() {
  if (!redzone_audit_) return;
  const Site sweep{"kernel", 0, "redzone-teardown"};
  // Still-live app guards first, in registration order. Buffers normally
  // validate themselves at destruction (unregister); this catches ones
  // still alive when the run is torn down.
  for (const auto& g : run_.redzone_guards)
    if (g.zone && !redzone::intact(*g.zone))
      report_redzone_corruption(g.site, g.pid, g.label, *g.zone);
  // Then every inode, sorted by ino — a deterministic order regardless of
  // hash-map iteration, clone history, jobs count, or data plane.
  for (Ino ino : vfs_.all_inos_sorted()) {
    const Inode& node = vfs_.inode(ino);
    if (!redzone::intact(node.redzone))
      report_redzone_corruption(sweep, -1, vfs_.canonical_path(ino),
                                node.redzone);
  }
}

void Kernel::privileged_action(const Site& site, Pid pid,
                               const std::string& what,
                               bool believes_authorized) {
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "privileged_action";
  ctx.aux = what;
  ctx.data = believes_authorized ? "authorized" : "unauthorized";
  dispatch_before(ctx);
  dispatch_after(ctx, Err::ok);
}

// --- exec -------------------------------------------------------------------

SysResult<Kernel::ExecTarget> Kernel::resolve_exec_target(
    const Process& p, const std::string& command) {
  auto try_path = [&](const std::string& candidate) -> SysResult<ExecTarget> {
    auto r = vfs_.resolve(candidate, p.cwd, p.euid, p.egid,
                          /*follow_final=*/true);
    if (!r.ok()) return r.error();
    ExecTarget t;
    t.ino = r.value();
    t.canonical = vfs_.canonical_path(r.value());
    return t;
  };
  if (ep::contains(command, "/")) return try_path(command);
  // $PATH search: the invisible use of an internal entity Section 2.3.1
  // warns about — the process's environment decides what runs.
  std::string search = "/bin:/usr/bin";
  if (auto it = p.env.find("PATH"); it != p.env.end()) search = it->second;
  for (const auto& dir : ep::split_nonempty(search, ':')) {
    auto t = try_path(path::join(dir, command));
    if (t.ok()) return t;
  }
  return Err::noent;
}

SysResult<int> Kernel::run_image(const Site& site, Pid parent,
                                 ExecTarget target,
                                 std::vector<std::string> args,
                                 const std::string& invoked_as) {
  Process& p = proc(parent);
  const Inode& node = vfs_.inode(target.ino);
  if (!node.is_regular()) return Err::acces;
  if (!Vfs::permits_with_root(node, p.euid, p.egid, Perm::exec))
    return Err::acces;
  if (node.image.empty() || !images_.count(node.image)) return Err::noexec;
  if (exec_depth_ > 16) return Err::again;

  Pid cpid = next_pid_++;
  Process c;
  c.pid = cpid;
  c.ppid = parent;
  c.ruid = p.ruid;
  c.rgid = p.rgid;
  c.euid = node.setuid() ? node.uid : p.euid;
  c.egid = p.egid;
  c.cwd = p.cwd;
  c.umask = p.umask;
  c.env = p.env;
  c.args = std::move(args);
  c.exe = target.canonical;
  procs_[cpid] = std::move(c);

  AppImage image = images_.at(node.image);
  int code = 0;
  ++exec_depth_;
  try {
    code = image(*this, cpid);
  } catch (const AppCrash& crash) {
    code = crash.code;
    procs_.at(cpid).crashed = true;
    app_fault(site, cpid, AppFault::crash,
              invoked_as + ": " + crash.reason);
  }
  --exec_depth_;
  procs_.at(cpid).exit_code = code;
  console_ += procs_.at(cpid).stdout_text;
  return code;
}

SysResult<int> Kernel::exec(const Site& site, Pid pid,
                            const std::string& command,
                            std::vector<std::string> args) {
  Process& p = proc(pid);
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "exec";
  ctx.path = command;
  ctx.aux = summarize_args(args);
  dispatch_before(ctx);
  if (ctx.force_fail) {
    dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  auto target = resolve_exec_target(p, command);
  if (!target.ok()) {
    dispatch_after(ctx, target.error());
    return target.error();
  }
  describe_object(ctx, target.value().ino);
  ctx.object_preexisting = true;
  auto r = run_image(site, pid, target.value(), std::move(args), command);
  dispatch_after(ctx, r.ok() ? Err::ok : r.error());
  return r;
}

SysResult<int> Kernel::fexec(const Site& site, Pid pid, Fd fd,
                             std::vector<std::string> args) {
  Process& p = proc(pid);
  auto it = p.fds.find(fd);
  if (it == p.fds.end()) return Err::badf;
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "exec";
  ctx.path = it->second.opened_path;
  ctx.aux = summarize_args(args);
  dispatch_before(ctx);
  if (ctx.force_fail) {
    dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  // Note: perturbations that rewired the *path* between the program's
  // check and this exec do not bite — the descriptor pins the inode.
  if (!vfs_.exists(it->second.ino)) {
    dispatch_after(ctx, Err::io);
    return Err::io;
  }
  ExecTarget t;
  t.ino = it->second.ino;
  t.canonical = vfs_.canonical_path(t.ino);
  describe_object(ctx, t.ino);
  ctx.object_preexisting = true;
  auto r = run_image(site, pid, t, std::move(args), it->second.opened_path);
  dispatch_after(ctx, r.ok() ? Err::ok : r.error());
  return r;
}

SysResult<int> Kernel::spawn(const std::string& exe_path,
                             std::vector<std::string> args, Uid ruid, Gid rgid,
                             std::map<std::string, std::string> env,
                             std::string cwd) {
  // The harness invoking the program under test: not an interaction of the
  // program with its environment, so no hooks fire here.
  auto r = vfs_.resolve(exe_path, cwd, ruid, rgid, /*follow_final=*/true);
  if (!r.ok()) return r.error();
  const Inode& node = vfs_.inode(r.value());
  if (!node.is_regular()) return Err::acces;
  if (!Vfs::permits_with_root(node, ruid, rgid, Perm::exec)) return Err::acces;
  if (node.image.empty() || !images_.count(node.image)) return Err::noexec;

  if (env.find("PATH") == env.end()) env["PATH"] = "/bin:/usr/bin";

  Pid cpid = next_pid_++;
  Process c;
  c.pid = cpid;
  c.ppid = 0;
  c.ruid = ruid;
  c.rgid = rgid;
  c.euid = node.setuid() ? node.uid : ruid;
  c.egid = rgid;
  c.cwd = std::move(cwd);
  c.env = std::move(env);
  c.args = std::move(args);
  c.exe = vfs_.canonical_path(r.value());
  procs_[cpid] = std::move(c);

  AppImage image = images_.at(node.image);
  int code = 0;
  ++exec_depth_;
  try {
    code = image(*this, cpid);
  } catch (const AppCrash& crash) {
    code = crash.code;
    procs_.at(cpid).crashed = true;
    app_fault(Site{"kernel", 0, "spawn-crash"}, cpid, AppFault::crash,
              exe_path + ": " + crash.reason);
  }
  --exec_depth_;
  procs_.at(cpid).exit_code = code;
  console_ += procs_.at(cpid).stdout_text;
  return code;
}

}  // namespace ep::os
